#include "src/verify/scenario.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace laminar {
namespace {

// Arms one chaos class: Bernoulli gate, then a log-uniform rate so the
// schedule mixes quiet and violent classes.
double DrawRate(Rng& r) {
  if (!r.Bernoulli(0.5)) {
    return 0.0;
  }
  return std::exp(r.Uniform(std::log(2.0), std::log(60.0)));
}

const char* ScaleKey(ModelScale scale) {
  switch (scale) {
    case ModelScale::k7B:
      return "7b";
    case ModelScale::k32B:
      return "32b";
    case ModelScale::k72B:
      return "72b";
  }
  return "7b";
}

const char* TaskKey(TaskKind task) {
  return task == TaskKind::kToolCalling ? "tool" : "math";
}

const char* SamplerKey(SamplerKind sampler) {
  switch (sampler) {
    case SamplerKind::kFifo:
      return "fifo";
    case SamplerKind::kFreshness:
      return "freshness";
    case SamplerKind::kStalenessCapped:
      return "staleness_capped";
  }
  return "fifo";
}

// Every key the parser dispatches on. Anything outside this list warns and
// is skipped (forward compatibility with corpus files written by newer
// binaries). A key added to the dispatch chain but forgotten here would be
// silently skipped — which the byte-exact round-trip test catches, since the
// re-emitted default would no longer match the input.
bool KnownScenarioKey(const std::string& key) {
  static const char* const kKeys[] = {
      "seed",           "scale",
      "task",           "sampler",
      "train_gpus",     "rollout_gpus",
      "global_batch",   "group_size",
      "num_minibatches", "max_concurrency",
      "backlog_cap",    "staleness_cap",
      "repack",         "repack_period",
      "static_threshold", "static_threshold_requests",
      "partial_rollout", "length_drift",
      "chaos",          "chaos_seed",
      "chaos_start",    "chaos_horizon",
      "rate_machine_fail", "rate_relay_fail",
      "rate_master_fail", "rate_trainer_fail",
      "rate_machine_stall", "rate_link_flap",
      "rate_replica_slow", "rate_message_drop",
      "crash_restart_rate", "shards",
      "shard_lane_control",
      "snapshot_at",    "warmup",
      "measure",        "config_seed",
      "diff_sync",      "diff_repack",
      "plan_cases",     "serving",
      "serving_rate",   "serving_amplitude",
      "serving_period", "serving_slo_base",
      "serving_slo_per_token", "serving_dedicated",
      "restore_mode",
  };
  for (const char* k : kKeys) {
    if (key == k) {
      return true;
    }
  }
  return false;
}

}  // namespace

Scenario GenerateScenario(uint64_t seed) {
  Scenario scn;
  scn.seed = seed;
  Rng r = Rng(seed).Fork("scenario");

  RlSystemConfig& cfg = scn.config;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = r.Bernoulli(0.85) ? ModelScale::k7B : ModelScale::k32B;
  cfg.task = r.Bernoulli(0.70) ? TaskKind::kMathReasoning : TaskKind::kToolCalling;

  // Topology. Rollout GPUs are a whole number of Laminar-TP replicas; the
  // total stays divisible by the sync baseline's TP (2 for 7B, 4 for 32B) so
  // the colocated twin tiles the same cluster.
  int tp = RolloutTensorParallel(SystemKind::kLaminar, cfg.scale);
  if (cfg.scale == ModelScale::k7B) {
    int replicas = 2 * static_cast<int>(r.UniformInt(1, 3));  // 2/4/6
    cfg.rollout_gpus = replicas * tp;
  } else {
    cfg.rollout_gpus = tp * static_cast<int>(r.UniformInt(2, 3));
  }
  cfg.train_gpus = r.Bernoulli(0.5) ? 4 : 8;
  cfg.total_gpus = cfg.train_gpus + cfg.rollout_gpus;

  // RL shape. Batches are small enough that a scenario simulates in well
  // under a second; every group count exceeds the replica count so static
  // sharding never hands a replica an empty chunk.
  cfg.group_size = 4 << r.UniformInt(0, 2);  // 4/8/16
  int num_groups = static_cast<int>(r.UniformInt(8, 40));
  cfg.global_batch = num_groups * cfg.group_size;
  cfg.num_minibatches = 4;
  cfg.max_concurrency = 64 << r.UniformInt(0, 2);  // 64/128/256
  cfg.per_replica_batch = 0;
  cfg.backlog_cap = r.Bernoulli(0.25) ? cfg.global_batch * 3 / 2 : 0;

  switch (r.UniformInt(0, 2)) {
    case 0:
      cfg.sampler = SamplerKind::kFifo;
      break;
    case 1:
      cfg.sampler = SamplerKind::kFreshness;
      break;
    default:
      cfg.sampler = SamplerKind::kStalenessCapped;
      break;
  }
  cfg.staleness_cap = static_cast<int>(r.UniformInt(1, 6));

  cfg.repack_enabled = r.Bernoulli(0.8);
  cfg.repack_period_seconds = r.Uniform(2.0, 8.0);
  cfg.repack_static_threshold = cfg.repack_enabled && r.Bernoulli(0.25);
  cfg.repack_static_threshold_requests = static_cast<int>(r.UniformInt(4, 12));
  cfg.laminar_partial_rollout = r.Bernoulli(0.15);
  cfg.length_drift = r.Bernoulli(0.2);

  cfg.chaos_enabled = r.Bernoulli(0.6);
  cfg.chaos_seed = seed;
  cfg.chaos.start_seconds = r.Uniform(20.0, 60.0);
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.chaos.machine_fail_per_hour = DrawRate(r);
  cfg.chaos.relay_fail_per_hour = DrawRate(r);
  cfg.chaos.master_fail_per_hour = DrawRate(r);
  cfg.chaos.trainer_fail_per_hour = DrawRate(r);
  cfg.chaos.machine_stall_per_hour = DrawRate(r);
  cfg.chaos.link_flap_per_hour = DrawRate(r);
  cfg.chaos.replica_slow_per_hour = DrawRate(r);
  cfg.chaos.message_drop_per_hour = DrawRate(r);
  double total_rate = cfg.chaos.machine_fail_per_hour + cfg.chaos.relay_fail_per_hour +
                      cfg.chaos.master_fail_per_hour + cfg.chaos.trainer_fail_per_hour +
                      cfg.chaos.machine_stall_per_hour + cfg.chaos.link_flap_per_hour +
                      cfg.chaos.replica_slow_per_hour + cfg.chaos.message_drop_per_hour;
  if (cfg.chaos_enabled && total_rate == 0.0) {
    cfg.chaos.machine_stall_per_hour = 30.0;  // chaos armed means chaos happens
  }
  // Crash-restart chaos is drawn from its own forked stream, appended after
  // every pre-existing draw, so the scenarios older seeds generate are
  // byte-identical to what they produced before this class existed.
  Rng cr = Rng(seed).Fork("crash-restart");
  if (cfg.chaos_enabled && cr.Bernoulli(0.35)) {
    cfg.chaos.crash_restart_per_hour =
        std::exp(cr.Uniform(std::log(2.0), std::log(30.0)));
  }
  // The serving-tier axis likewise draws from its own forked stream, so
  // pre-existing seeds keep generating byte-identical scenarios.
  Rng sv = Rng(seed).Fork("serving");
  if (sv.Bernoulli(0.30)) {
    cfg.serving.enabled = true;
    cfg.serving.base_rate_per_sec = sv.Uniform(0.5, 3.0);
    cfg.serving.diurnal_amplitude = sv.Uniform(0.2, 0.8);
    cfg.serving.diurnal_period_seconds = sv.Uniform(120.0, 900.0);
    cfg.serving.slo_base_seconds = sv.Uniform(20.0, 90.0);
    cfg.serving.slo_per_token_seconds = sv.Uniform(0.02, 0.1);
    if (sv.Bernoulli(0.25)) {
      cfg.serving.dedicated_replicas = 1;  // static-partition admission path
    }
  }

  cfg.warmup_iterations = 1;
  cfg.measure_iterations = static_cast<int>(r.UniformInt(1, 2));
  cfg.seed = Rng(seed).Fork("config-seed").NextU64();

  // Every primary run is fully audited: invariants, the push ledger, and a
  // full trace capture (the determinism oracle hashes its binary form).
  cfg.invariants_enabled = true;
  cfg.ledger_enabled = true;
  cfg.trace.enabled = true;
  cfg.trace.ring_capacity = 0;

  scn.diff_sync = r.Bernoulli(0.8);
  scn.diff_repack = cfg.repack_enabled && r.Bernoulli(0.8);
  scn.plan_cases = 32;
  return scn;
}

RlSystemConfig CleanConfig(const RlSystemConfig& primary) {
  RlSystemConfig cfg = primary;
  cfg.chaos_enabled = false;
  cfg.length_drift = false;
  // Twins run the tier off: serving perturbs scheduling but never the
  // trajectory specs the differential oracles compare, and the sync twin's
  // driver has no admission path at all.
  cfg.serving = ServingTrafficConfig{};
  cfg.trace.enabled = false;  // the determinism oracle runs on the primary
  cfg.ledger_enabled = true;
  cfg.invariants_enabled = true;
  return cfg;
}

RlSystemConfig SyncTwin(const RlSystemConfig& primary) {
  RlSystemConfig cfg = CleanConfig(primary);
  cfg.system = SystemKind::kVerlSync;
  // Colocated: every GPU alternates between training and rollout.
  cfg.train_gpus = cfg.total_gpus;
  cfg.rollout_gpus = cfg.total_gpus;
  cfg.laminar_partial_rollout = false;
  cfg.invariants_enabled = false;  // the checker is wired by the Laminar driver
  return cfg;
}

RlSystemConfig RepackOffTwin(const RlSystemConfig& primary) {
  RlSystemConfig cfg = CleanConfig(primary);
  cfg.repack_enabled = false;
  cfg.repack_static_threshold = false;
  return cfg;
}

std::string ScenarioToText(const Scenario& scn) {
  const RlSystemConfig& cfg = scn.config;
  std::ostringstream out;
  out << "# laminar fuzz scenario v1\n";
  out << "seed=" << scn.seed << "\n";
  out << "scale=" << ScaleKey(cfg.scale) << "\n";
  out << "task=" << TaskKey(cfg.task) << "\n";
  out << "train_gpus=" << cfg.train_gpus << "\n";
  out << "rollout_gpus=" << cfg.rollout_gpus << "\n";
  out << "global_batch=" << cfg.global_batch << "\n";
  out << "group_size=" << cfg.group_size << "\n";
  out << "num_minibatches=" << cfg.num_minibatches << "\n";
  out << "max_concurrency=" << cfg.max_concurrency << "\n";
  out << "backlog_cap=" << cfg.backlog_cap << "\n";
  out << "sampler=" << SamplerKey(cfg.sampler) << "\n";
  out << "staleness_cap=" << cfg.staleness_cap << "\n";
  out << "repack=" << (cfg.repack_enabled ? 1 : 0) << "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", cfg.repack_period_seconds);
  out << "repack_period=" << buf << "\n";
  out << "static_threshold=" << (cfg.repack_static_threshold ? 1 : 0) << "\n";
  out << "static_threshold_requests=" << cfg.repack_static_threshold_requests << "\n";
  out << "partial_rollout=" << (cfg.laminar_partial_rollout ? 1 : 0) << "\n";
  out << "length_drift=" << (cfg.length_drift ? 1 : 0) << "\n";
  out << "chaos=" << (cfg.chaos_enabled ? 1 : 0) << "\n";
  out << "chaos_seed=" << cfg.chaos_seed << "\n";
  auto emit_double = [&out, &buf](const char* key, double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << key << "=" << buf << "\n";
  };
  emit_double("chaos_start", cfg.chaos.start_seconds);
  emit_double("chaos_horizon", cfg.chaos.horizon_seconds);
  emit_double("rate_machine_fail", cfg.chaos.machine_fail_per_hour);
  emit_double("rate_relay_fail", cfg.chaos.relay_fail_per_hour);
  emit_double("rate_master_fail", cfg.chaos.master_fail_per_hour);
  emit_double("rate_trainer_fail", cfg.chaos.trainer_fail_per_hour);
  emit_double("rate_machine_stall", cfg.chaos.machine_stall_per_hour);
  emit_double("rate_link_flap", cfg.chaos.link_flap_per_hour);
  emit_double("rate_replica_slow", cfg.chaos.replica_slow_per_hour);
  emit_double("rate_message_drop", cfg.chaos.message_drop_per_hour);
  if (cfg.chaos.crash_restart_per_hour != 0.0) {
    // Like shards= below: emitted only when armed, so pre-existing corpus
    // files and their byte-exact round-trips are untouched.
    emit_double("crash_restart_rate", cfg.chaos.crash_restart_per_hour);
  }
  out << "warmup=" << cfg.warmup_iterations << "\n";
  out << "measure=" << cfg.measure_iterations << "\n";
  if (cfg.shards != 1) {
    // Emitted only when sharded so pre-existing corpus files and their
    // byte-exact round-trips are untouched.
    out << "shards=" << cfg.shards << "\n";
  }
  if (!cfg.shard_lane_control) {
    // Armed-only, like shards=: emitted only when lane-riding control is
    // explicitly disabled, so pre-existing corpus files round-trip
    // byte-identically.
    out << "shard_lane_control=0\n";
  }
  if (cfg.snapshot_at_seconds != 0.0) {
    emit_double("snapshot_at", cfg.snapshot_at_seconds);
  }
  if (cfg.restore_mode != RestoreMode::kDirect) {
    // Armed-only, like shards=: pre-existing corpus files round-trip
    // byte-identically. The axis pins which recovery leg the fuzzer's
    // snapshot-diff oracle drives through restore_from.
    out << "restore_mode=replay\n";
  }
  if (cfg.serving.enabled) {
    // Armed-only, like shards= and crash_restart_rate=: serving-off corpus
    // files round-trip byte-identically to what older binaries wrote.
    out << "serving=1\n";
    emit_double("serving_rate", cfg.serving.base_rate_per_sec);
    emit_double("serving_amplitude", cfg.serving.diurnal_amplitude);
    emit_double("serving_period", cfg.serving.diurnal_period_seconds);
    emit_double("serving_slo_base", cfg.serving.slo_base_seconds);
    emit_double("serving_slo_per_token", cfg.serving.slo_per_token_seconds);
    out << "serving_dedicated=" << cfg.serving.dedicated_replicas << "\n";
  }
  out << "config_seed=" << cfg.seed << "\n";
  out << "diff_sync=" << (scn.diff_sync ? 1 : 0) << "\n";
  out << "diff_repack=" << (scn.diff_repack ? 1 : 0) << "\n";
  out << "plan_cases=" << scn.plan_cases << "\n";
  return out.str();
}

bool ScenarioFromText(const std::string& text, Scenario* out, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    size_t eq = line.find('=', first);
    if (eq == std::string::npos) {
      return fail("line " + std::to_string(line_no) + ": expected key=value");
    }
    size_t last = line.find_last_not_of(" \t\r");
    kv[line.substr(first, eq - first)] = line.substr(eq + 1, last - eq);
  }

  Scenario scn;
  RlSystemConfig& cfg = scn.config;
  cfg.system = SystemKind::kLaminar;
  cfg.num_minibatches = 4;
  cfg.per_replica_batch = 0;
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.invariants_enabled = true;
  cfg.ledger_enabled = true;
  cfg.trace.enabled = true;

  for (const auto& [key, value] : kv) {
    if (!KnownScenarioKey(key)) {
      LAMINAR_LOG(kWarning) << "scenario: skipping unknown key '" << key << "="
                            << value << "'";
      continue;
    }
    char* end = nullptr;
    double num = std::strtod(value.c_str(), &end);
    bool numeric = end != nullptr && *end == '\0' && !value.empty();
    auto need_num = [&]() { return numeric; };
    if (key == "seed") {
      scn.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "scale") {
      if (value == "7b") {
        cfg.scale = ModelScale::k7B;
      } else if (value == "32b") {
        cfg.scale = ModelScale::k32B;
      } else if (value == "72b") {
        cfg.scale = ModelScale::k72B;
      } else {
        return fail("bad scale '" + value + "'");
      }
    } else if (key == "task") {
      if (value == "math") {
        cfg.task = TaskKind::kMathReasoning;
      } else if (value == "tool") {
        cfg.task = TaskKind::kToolCalling;
      } else {
        return fail("bad task '" + value + "'");
      }
    } else if (key == "sampler") {
      if (value == "fifo") {
        cfg.sampler = SamplerKind::kFifo;
      } else if (value == "freshness") {
        cfg.sampler = SamplerKind::kFreshness;
      } else if (value == "staleness_capped") {
        cfg.sampler = SamplerKind::kStalenessCapped;
      } else {
        return fail("bad sampler '" + value + "'");
      }
    } else if (key == "restore_mode") {
      if (value == "direct") {
        cfg.restore_mode = RestoreMode::kDirect;
      } else if (value == "replay") {
        cfg.restore_mode = RestoreMode::kReplay;
      } else {
        return fail("bad restore_mode '" + value + "'");
      }
    } else if (!need_num()) {
      return fail("key '" + key + "': non-numeric value '" + value + "'");
    } else if (key == "train_gpus") {
      cfg.train_gpus = static_cast<int>(num);
    } else if (key == "rollout_gpus") {
      cfg.rollout_gpus = static_cast<int>(num);
    } else if (key == "global_batch") {
      cfg.global_batch = static_cast<int>(num);
    } else if (key == "group_size") {
      cfg.group_size = static_cast<int>(num);
    } else if (key == "num_minibatches") {
      cfg.num_minibatches = static_cast<int>(num);
    } else if (key == "max_concurrency") {
      cfg.max_concurrency = static_cast<int>(num);
    } else if (key == "backlog_cap") {
      cfg.backlog_cap = static_cast<int64_t>(num);
    } else if (key == "staleness_cap") {
      cfg.staleness_cap = static_cast<int>(num);
    } else if (key == "repack") {
      cfg.repack_enabled = num != 0.0;
    } else if (key == "repack_period") {
      cfg.repack_period_seconds = num;
    } else if (key == "static_threshold") {
      cfg.repack_static_threshold = num != 0.0;
    } else if (key == "static_threshold_requests") {
      cfg.repack_static_threshold_requests = static_cast<int>(num);
    } else if (key == "partial_rollout") {
      cfg.laminar_partial_rollout = num != 0.0;
    } else if (key == "length_drift") {
      cfg.length_drift = num != 0.0;
    } else if (key == "chaos") {
      cfg.chaos_enabled = num != 0.0;
    } else if (key == "chaos_seed") {
      cfg.chaos_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "chaos_start") {
      cfg.chaos.start_seconds = num;
    } else if (key == "chaos_horizon") {
      cfg.chaos.horizon_seconds = num;
    } else if (key == "rate_machine_fail") {
      cfg.chaos.machine_fail_per_hour = num;
    } else if (key == "rate_relay_fail") {
      cfg.chaos.relay_fail_per_hour = num;
    } else if (key == "rate_master_fail") {
      cfg.chaos.master_fail_per_hour = num;
    } else if (key == "rate_trainer_fail") {
      cfg.chaos.trainer_fail_per_hour = num;
    } else if (key == "rate_machine_stall") {
      cfg.chaos.machine_stall_per_hour = num;
    } else if (key == "rate_link_flap") {
      cfg.chaos.link_flap_per_hour = num;
    } else if (key == "rate_replica_slow") {
      cfg.chaos.replica_slow_per_hour = num;
    } else if (key == "rate_message_drop") {
      cfg.chaos.message_drop_per_hour = num;
    } else if (key == "crash_restart_rate") {
      cfg.chaos.crash_restart_per_hour = num;
    } else if (key == "shards") {
      cfg.shards = static_cast<int>(num);
    } else if (key == "shard_lane_control") {
      cfg.shard_lane_control = num != 0.0;
    } else if (key == "snapshot_at") {
      cfg.snapshot_at_seconds = num;
    } else if (key == "serving") {
      cfg.serving.enabled = num != 0.0;
    } else if (key == "serving_rate") {
      cfg.serving.base_rate_per_sec = num;
    } else if (key == "serving_amplitude") {
      cfg.serving.diurnal_amplitude = num;
    } else if (key == "serving_period") {
      cfg.serving.diurnal_period_seconds = num;
    } else if (key == "serving_slo_base") {
      cfg.serving.slo_base_seconds = num;
    } else if (key == "serving_slo_per_token") {
      cfg.serving.slo_per_token_seconds = num;
    } else if (key == "serving_dedicated") {
      cfg.serving.dedicated_replicas = static_cast<int>(num);
    } else if (key == "warmup") {
      cfg.warmup_iterations = static_cast<int>(num);
    } else if (key == "measure") {
      cfg.measure_iterations = static_cast<int>(num);
    } else if (key == "config_seed") {
      cfg.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "diff_sync") {
      scn.diff_sync = num != 0.0;
    } else if (key == "diff_repack") {
      scn.diff_repack = num != 0.0;
    } else if (key == "plan_cases") {
      scn.plan_cases = static_cast<int>(num);
    } else {
      // Unreachable unless KnownScenarioKey and this chain drift apart.
      return fail("key '" + key + "' is known but unhandled");
    }
  }
  if (cfg.train_gpus <= 0 || cfg.rollout_gpus <= 0) {
    return fail("scenario needs explicit train_gpus and rollout_gpus");
  }
  if (cfg.global_batch <= 0 || cfg.group_size <= 0 ||
      cfg.global_batch % cfg.group_size != 0) {
    return fail("global_batch must be a positive multiple of group_size");
  }
  if (cfg.num_minibatches <= 0 ||
      cfg.global_batch % cfg.num_minibatches != 0) {
    // The trainer CHECKs this at construction; reject here so a bad scenario
    // file fails with a parse error instead of aborting the process.
    return fail("global_batch must be a positive multiple of num_minibatches");
  }
  cfg.total_gpus = cfg.train_gpus + cfg.rollout_gpus;
  *out = scn;
  return true;
}

std::string ScenarioSummary(const Scenario& scn) {
  const RlSystemConfig& cfg = scn.config;
  std::ostringstream out;
  out << "seed=" << scn.seed << " " << ScaleKey(cfg.scale) << "/" << TaskKey(cfg.task)
      << " " << cfg.train_gpus << "+" << cfg.rollout_gpus << "gpu batch=" << cfg.global_batch
      << "x" << cfg.group_size << " sampler=" << SamplerKey(cfg.sampler);
  if (cfg.repack_enabled) {
    out << (cfg.repack_static_threshold ? " repack=static" : " repack=bestfit");
  }
  if (cfg.laminar_partial_rollout) {
    out << " partial";
  }
  if (cfg.length_drift) {
    out << " drift";
  }
  if (cfg.chaos_enabled) {
    out << " chaos";
  }
  if (cfg.serving.enabled) {
    out << " serving";
  }
  if (scn.diff_sync) {
    out << " +sync-diff";
  }
  if (scn.diff_repack) {
    out << " +repack-diff";
  }
  return out.str();
}

}  // namespace laminar
