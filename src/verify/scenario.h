// Seeded scenario generation for the fuzz harness (DESIGN.md §10).
//
// A Scenario is one reproducible full-system test case derived entirely from
// a single 64-bit seed: cluster topology, model scale, workload mix,
// sampler/eviction policy, repack mode, fault schedule, and which
// differential twins to run. Scenarios round-trip through a key=value text
// format so a failing case can be committed to the corpus and replayed by
// CTest byte-for-byte.
#ifndef LAMINAR_SRC_VERIFY_SCENARIO_H_
#define LAMINAR_SRC_VERIFY_SCENARIO_H_

#include <cstdint>
#include <string>

#include "src/core/config.h"

namespace laminar {

struct Scenario {
  uint64_t seed = 0;
  // The primary run: always a Laminar system, possibly with chaos armed and
  // length drift on. Invariants, ledger capture and tracing are forced on.
  RlSystemConfig config;
  // Differential twins (derived from `config` by CleanConfig/SyncTwin/
  // RepackOffTwin): compare per-trajectory ledgers across orchestration
  // modes. Chaos and length drift are stripped from twins so the workload
  // streams are version-independent and the runs complete the same work.
  bool diff_sync = true;
  bool diff_repack = true;
  // Number of random Algorithm-1 consolidation cases checked against the
  // post-apply plan oracle (src/verify/oracles.h).
  int plan_cases = 32;
};

// Derives a scenario from `seed`. Deterministic: equal seeds yield equal
// scenarios on every platform the simulator supports.
Scenario GenerateScenario(uint64_t seed);

// The primary config with chaos and length drift stripped — the common
// reference both differential twins are compared against.
RlSystemConfig CleanConfig(const RlSystemConfig& primary);
// The synchronous colocated baseline over the same total GPUs and workload.
RlSystemConfig SyncTwin(const RlSystemConfig& primary);
// The clean config with trajectory consolidation disabled.
RlSystemConfig RepackOffTwin(const RlSystemConfig& primary);

// Text round-trip. ScenarioToText emits '#'-commented key=value lines;
// ScenarioFromText accepts exactly that format (missing keys keep their
// defaults). Unknown key=value lines warn and are skipped so corpus files
// written by newer binaries still replay on older ones; structurally
// malformed input (a non-comment line with no '=') is still an error.
// Returns false with a message in *error on malformed input.
std::string ScenarioToText(const Scenario& scenario);
bool ScenarioFromText(const std::string& text, Scenario* out, std::string* error);

// One-line human summary ("seed=7 7b/math 8+4gpu batch=256x8 repack chaos").
std::string ScenarioSummary(const Scenario& scenario);

}  // namespace laminar

#endif  // LAMINAR_SRC_VERIFY_SCENARIO_H_
