#include "src/verify/shrink.h"

#include <algorithm>
#include <vector>

#include "src/cluster/placement.h"

namespace laminar {
namespace {

using Transform = bool (*)(Scenario&);  // returns false when it cannot simplify

// Each transform makes the scenario strictly simpler or returns false. The
// order front-loads the big wins (whole subsystems off) so the greedy loop
// converges in few evaluations.
bool DropChaos(Scenario& s) {
  if (!s.config.chaos_enabled) {
    return false;
  }
  s.config.chaos_enabled = false;
  return true;
}

bool DropSyncDiff(Scenario& s) {
  if (!s.diff_sync) {
    return false;
  }
  s.diff_sync = false;
  return true;
}

bool DropRepackDiff(Scenario& s) {
  if (!s.diff_repack) {
    return false;
  }
  s.diff_repack = false;
  return true;
}

bool DropPartialRollout(Scenario& s) {
  if (!s.config.laminar_partial_rollout) {
    return false;
  }
  s.config.laminar_partial_rollout = false;
  return true;
}

bool DropLengthDrift(Scenario& s) {
  if (!s.config.length_drift) {
    return false;
  }
  s.config.length_drift = false;
  return true;
}

bool ForceFifoSampler(Scenario& s) {
  if (s.config.sampler == SamplerKind::kFifo) {
    return false;
  }
  s.config.sampler = SamplerKind::kFifo;
  return true;
}

bool DropStaticThreshold(Scenario& s) {
  if (!s.config.repack_static_threshold) {
    return false;
  }
  s.config.repack_static_threshold = false;
  return true;
}

bool SingleMeasuredIteration(Scenario& s) {
  if (s.config.measure_iterations <= 1) {
    return false;
  }
  s.config.measure_iterations = 1;
  return true;
}

bool DropWarmup(Scenario& s) {
  if (s.config.warmup_iterations == 0) {
    return false;
  }
  s.config.warmup_iterations = 0;
  return true;
}

bool HalveBatch(Scenario& s) {
  int groups = s.config.global_batch / s.config.group_size;
  int halved = (groups / 2) * s.config.group_size;
  // The trainer requires global_batch % num_minibatches == 0; a candidate
  // that breaks it would CHECK-abort the whole shrink run, so refuse it.
  if (groups < 4 || halved % s.config.num_minibatches != 0) {
    return false;
  }
  s.config.global_batch = halved;
  return true;
}

bool HalveGroupSize(Scenario& s) {
  if (s.config.group_size < 4) {
    return false;
  }
  int groups = s.config.global_batch / s.config.group_size;
  int new_batch = groups * (s.config.group_size / 2);
  if (new_batch % s.config.num_minibatches != 0) {
    return false;  // would violate the trainer's mini-batch divisibility
  }
  s.config.group_size /= 2;
  s.config.global_batch = new_batch;
  return true;
}

bool HalveConcurrency(Scenario& s) {
  if (s.config.max_concurrency / 2 < s.config.group_size ||
      s.config.max_concurrency <= 32) {
    return false;
  }
  s.config.max_concurrency /= 2;
  return true;
}

bool HalveRollout(Scenario& s) {
  int tp = RolloutTensorParallel(SystemKind::kLaminar, s.config.scale);
  // Keep at least two replicas (repack needs a source and a destination) and
  // a total divisible by the sync twin's TP.
  int sync_tp = RolloutTensorParallel(SystemKind::kVerlSync, s.config.scale);
  int halved = s.config.rollout_gpus / 2 / tp * tp;
  if (halved < 2 * tp || (s.config.train_gpus + halved) % sync_tp != 0) {
    return false;
  }
  s.config.rollout_gpus = halved;
  s.config.total_gpus = s.config.train_gpus + s.config.rollout_gpus;
  return true;
}

bool HalveTrain(Scenario& s) {
  int sync_tp = RolloutTensorParallel(SystemKind::kVerlSync, s.config.scale);
  int halved = s.config.train_gpus / 2;
  if (halved < 2 || (halved + s.config.rollout_gpus) % sync_tp != 0) {
    return false;
  }
  s.config.train_gpus = halved;
  s.config.total_gpus = s.config.train_gpus + s.config.rollout_gpus;
  return true;
}

bool FewerPlanCases(Scenario& s) {
  if (s.plan_cases <= 4) {
    return false;
  }
  s.plan_cases = 4;
  return true;
}

// Zero one chaos class at a time (only meaningful while chaos is on).
template <double FaultProcessConfig::* Rate>
bool DropChaosClass(Scenario& s) {
  if (!s.config.chaos_enabled || s.config.chaos.*Rate == 0.0) {
    return false;
  }
  s.config.chaos.*Rate = 0.0;
  return true;
}

const std::vector<Transform>& Transforms() {
  static const std::vector<Transform> kTransforms = {
      DropChaos,
      DropSyncDiff,
      DropRepackDiff,
      DropPartialRollout,
      DropLengthDrift,
      SingleMeasuredIteration,
      DropWarmup,
      HalveBatch,
      HalveBatch,
      HalveGroupSize,
      HalveRollout,
      HalveTrain,
      HalveConcurrency,
      ForceFifoSampler,
      DropStaticThreshold,
      DropChaosClass<&FaultProcessConfig::machine_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::relay_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::master_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::trainer_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::machine_stall_per_hour>,
      DropChaosClass<&FaultProcessConfig::link_flap_per_hour>,
      DropChaosClass<&FaultProcessConfig::replica_slow_per_hour>,
      DropChaosClass<&FaultProcessConfig::message_drop_per_hour>,
      FewerPlanCases,
  };
  return kTransforms;
}

}  // namespace

ShrinkResult ShrinkScenario(const Scenario& failing,
                            const std::function<bool(const Scenario&)>& still_fails,
                            int max_attempts) {
  const std::vector<Transform>& transforms = Transforms();
  ShrinkResult result;
  result.scenario = failing;
  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    for (Transform t : transforms) {
      if (result.attempts >= max_attempts) {
        break;
      }
      Scenario candidate = result.scenario;
      if (!t(candidate)) {
        continue;
      }
      ++result.attempts;
      if (still_fails(candidate)) {
        result.scenario = candidate;
        ++result.accepted_steps;
        progressed = true;
      }
    }
  }
  return result;
}

ShrinkResult ShrinkScenario(const Scenario& failing,
                            const ShrinkBatchPredicate& still_fails_batch,
                            int max_attempts) {
  const std::vector<Transform>& transforms = Transforms();
  ShrinkResult result;
  result.scenario = failing;
  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    // One serial pass over the transform list, evaluated in speculative
    // windows: every applicable candidate from `index` onward is derived
    // from the current scenario and evaluated together. The first failing
    // candidate in submission order is committed; later candidates were
    // speculated against the stale base scenario, so they are discarded
    // (uncounted) and the window restarts after the accepted transform.
    size_t index = 0;
    while (index < transforms.size() && result.attempts < max_attempts) {
      std::vector<Scenario> candidates;
      std::vector<size_t> source;  // transform index per candidate
      int budget = max_attempts - result.attempts;
      for (size_t i = index;
           i < transforms.size() && static_cast<int>(candidates.size()) < budget; ++i) {
        Scenario candidate = result.scenario;
        if (!transforms[i](candidate)) {
          continue;
        }
        candidates.push_back(std::move(candidate));
        source.push_back(i);
      }
      if (candidates.empty()) {
        break;
      }
      std::vector<char> fails = still_fails_batch(candidates);
      size_t accepted = candidates.size();
      for (size_t j = 0; j < candidates.size(); ++j) {
        ++result.attempts;
        if (fails[j] != 0) {
          accepted = j;
          break;
        }
      }
      if (accepted < candidates.size()) {
        result.scenario = std::move(candidates[accepted]);
        ++result.accepted_steps;
        progressed = true;
        index = source[accepted] + 1;
      } else {
        index = transforms.size();
      }
    }
  }
  return result;
}

}  // namespace laminar
