#include "src/verify/shrink.h"

#include <algorithm>
#include <vector>

#include "src/cluster/placement.h"

namespace laminar {
namespace {

using Transform = bool (*)(Scenario&);  // returns false when it cannot simplify

// Each transform makes the scenario strictly simpler or returns false. The
// order front-loads the big wins (whole subsystems off) so the greedy loop
// converges in few evaluations.
bool DropChaos(Scenario& s) {
  if (!s.config.chaos_enabled) {
    return false;
  }
  s.config.chaos_enabled = false;
  return true;
}

bool DropSyncDiff(Scenario& s) {
  if (!s.diff_sync) {
    return false;
  }
  s.diff_sync = false;
  return true;
}

bool DropRepackDiff(Scenario& s) {
  if (!s.diff_repack) {
    return false;
  }
  s.diff_repack = false;
  return true;
}

bool DropPartialRollout(Scenario& s) {
  if (!s.config.laminar_partial_rollout) {
    return false;
  }
  s.config.laminar_partial_rollout = false;
  return true;
}

bool DropLengthDrift(Scenario& s) {
  if (!s.config.length_drift) {
    return false;
  }
  s.config.length_drift = false;
  return true;
}

bool ForceFifoSampler(Scenario& s) {
  if (s.config.sampler == SamplerKind::kFifo) {
    return false;
  }
  s.config.sampler = SamplerKind::kFifo;
  return true;
}

bool DropStaticThreshold(Scenario& s) {
  if (!s.config.repack_static_threshold) {
    return false;
  }
  s.config.repack_static_threshold = false;
  return true;
}

bool SingleMeasuredIteration(Scenario& s) {
  if (s.config.measure_iterations <= 1) {
    return false;
  }
  s.config.measure_iterations = 1;
  return true;
}

bool DropWarmup(Scenario& s) {
  if (s.config.warmup_iterations == 0) {
    return false;
  }
  s.config.warmup_iterations = 0;
  return true;
}

bool HalveBatch(Scenario& s) {
  int groups = s.config.global_batch / s.config.group_size;
  if (groups < 4) {
    return false;
  }
  s.config.global_batch = (groups / 2) * s.config.group_size;
  return true;
}

bool HalveGroupSize(Scenario& s) {
  if (s.config.group_size < 4) {
    return false;
  }
  int groups = s.config.global_batch / s.config.group_size;
  s.config.group_size /= 2;
  s.config.global_batch = groups * s.config.group_size;
  return true;
}

bool HalveConcurrency(Scenario& s) {
  if (s.config.max_concurrency / 2 < s.config.group_size ||
      s.config.max_concurrency <= 32) {
    return false;
  }
  s.config.max_concurrency /= 2;
  return true;
}

bool HalveRollout(Scenario& s) {
  int tp = RolloutTensorParallel(SystemKind::kLaminar, s.config.scale);
  // Keep at least two replicas (repack needs a source and a destination) and
  // a total divisible by the sync twin's TP.
  int sync_tp = RolloutTensorParallel(SystemKind::kVerlSync, s.config.scale);
  int halved = s.config.rollout_gpus / 2 / tp * tp;
  if (halved < 2 * tp || (s.config.train_gpus + halved) % sync_tp != 0) {
    return false;
  }
  s.config.rollout_gpus = halved;
  s.config.total_gpus = s.config.train_gpus + s.config.rollout_gpus;
  return true;
}

bool HalveTrain(Scenario& s) {
  int sync_tp = RolloutTensorParallel(SystemKind::kVerlSync, s.config.scale);
  int halved = s.config.train_gpus / 2;
  if (halved < 2 || (halved + s.config.rollout_gpus) % sync_tp != 0) {
    return false;
  }
  s.config.train_gpus = halved;
  s.config.total_gpus = s.config.train_gpus + s.config.rollout_gpus;
  return true;
}

bool FewerPlanCases(Scenario& s) {
  if (s.plan_cases <= 4) {
    return false;
  }
  s.plan_cases = 4;
  return true;
}

// Zero one chaos class at a time (only meaningful while chaos is on).
template <double FaultProcessConfig::* Rate>
bool DropChaosClass(Scenario& s) {
  if (!s.config.chaos_enabled || s.config.chaos.*Rate == 0.0) {
    return false;
  }
  s.config.chaos.*Rate = 0.0;
  return true;
}

}  // namespace

ShrinkResult ShrinkScenario(const Scenario& failing,
                            const std::function<bool(const Scenario&)>& still_fails,
                            int max_attempts) {
  static const std::vector<Transform> kTransforms = {
      DropChaos,
      DropSyncDiff,
      DropRepackDiff,
      DropPartialRollout,
      DropLengthDrift,
      SingleMeasuredIteration,
      DropWarmup,
      HalveBatch,
      HalveBatch,
      HalveGroupSize,
      HalveRollout,
      HalveTrain,
      HalveConcurrency,
      ForceFifoSampler,
      DropStaticThreshold,
      DropChaosClass<&FaultProcessConfig::machine_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::relay_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::master_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::trainer_fail_per_hour>,
      DropChaosClass<&FaultProcessConfig::machine_stall_per_hour>,
      DropChaosClass<&FaultProcessConfig::link_flap_per_hour>,
      DropChaosClass<&FaultProcessConfig::replica_slow_per_hour>,
      DropChaosClass<&FaultProcessConfig::message_drop_per_hour>,
      FewerPlanCases,
  };

  ShrinkResult result;
  result.scenario = failing;
  bool progressed = true;
  while (progressed && result.attempts < max_attempts) {
    progressed = false;
    for (Transform t : kTransforms) {
      if (result.attempts >= max_attempts) {
        break;
      }
      Scenario candidate = result.scenario;
      if (!t(candidate)) {
        continue;
      }
      ++result.attempts;
      if (still_fails(candidate)) {
        result.scenario = candidate;
        ++result.accepted_steps;
        progressed = true;
      }
    }
  }
  return result;
}

}  // namespace laminar
