// Greedy scenario shrinking: once a seed fails an oracle, minimize the
// scenario before committing it to the corpus, so the repro a human debugs
// is as small as the failure allows.
#ifndef LAMINAR_SRC_VERIFY_SHRINK_H_
#define LAMINAR_SRC_VERIFY_SHRINK_H_

#include <functional>
#include <vector>

#include "src/verify/scenario.h"

namespace laminar {

struct ShrinkResult {
  Scenario scenario;      // smallest still-failing scenario found
  int attempts = 0;       // candidate evaluations performed
  int accepted_steps = 0; // simplifications that preserved the failure
};

// Repeatedly applies an ordered list of simplifications (drop chaos classes,
// halve the batch, drop differential twins, shrink the cluster, force FIFO
// sampling, ...) and keeps each one iff `still_fails` returns true on the
// simplified scenario. Greedy to a fixed point, capped at `max_attempts`
// evaluations. `still_fails(failing)` is assumed true and is not re-checked.
ShrinkResult ShrinkScenario(const Scenario& failing,
                            const std::function<bool(const Scenario&)>& still_fails,
                            int max_attempts = 64);

// Speculative form for expensive predicates: candidates for a whole round of
// transforms are derived from the current scenario and handed to
// `still_fails_batch` together (out[i] = does candidate i still fail), so the
// caller can fan the evaluations across the sweep thread pool. Commits follow
// submission order — the first failing candidate is accepted and everything
// speculated past it is discarded — so the ShrinkResult (scenario, attempts,
// accepted_steps) is identical to the serial overload; over-evaluated
// discarded candidates are never counted.
using ShrinkBatchPredicate =
    std::function<std::vector<char>(const std::vector<Scenario>&)>;
ShrinkResult ShrinkScenario(const Scenario& failing,
                            const ShrinkBatchPredicate& still_fails_batch,
                            int max_attempts = 64);

}  // namespace laminar

#endif  // LAMINAR_SRC_VERIFY_SHRINK_H_
