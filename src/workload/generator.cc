#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace laminar {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMathReasoning:
      return "math";
    case TaskKind::kToolCalling:
      return "tool-calling";
  }
  return "?";
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, Rng rng)
    : config_(config), rng_(rng),
      response_lengths_(MathLengthDistribution(config.scale)),
      turn_lengths_(ToolTurnLengthDistribution()),
      env_latency_(SandboxLatencyDistribution()) {}

TrajectorySpec WorkloadGenerator::Sample(int weight_version) {
  TrajectorySpec spec;
  spec.prompt_tokens = rng_.UniformInt(config_.prompt_tokens_min, config_.prompt_tokens_max);
  double drift =
      config_.length_drift ? LengthDriftFactor(std::max(weight_version, 0)) : 1.0;

  if (config_.task == TaskKind::kMathReasoning) {
    TrajectorySegment seg;
    auto lengths = response_lengths_;
    lengths.median_tokens *= drift;
    seg.decode_tokens = lengths.Sample(rng_);
    spec.AppendSegment(seg);
    return spec;
  }

  // Tool calling: difficulty scales both the number of sandbox rounds and the
  // per-turn reasoning length, so hard prompts are long in *both* dimensions
  // (the paper's worst-case skew).
  double difficulty = rng_.Uniform();
  int turns = 1 + static_cast<int>(std::floor(difficulty * difficulty * config_.max_tool_calls));
  turns = std::clamp(turns, 1, config_.max_tool_calls);
  auto lengths = turn_lengths_;
  lengths.median_tokens *= drift * (0.8 + 0.6 * difficulty);
  for (int t = 0; t < turns; ++t) {
    TrajectorySegment seg;
    seg.decode_tokens = lengths.Sample(rng_);
    bool has_env_call = t + 1 < turns;  // the final segment is the answer
    if (has_env_call) {
      seg.env_latency = env_latency_.Sample(rng_) * config_.time_scale;
      seg.feedback_tokens = rng_.UniformInt(64, 512);
    }
    spec.AppendSegment(seg);
  }
  return spec;
}

double WorkloadGenerator::ExpectedResponseTokens() const {
  if (config_.task == TaskKind::kMathReasoning) {
    return response_lengths_.mean_estimate();
  }
  // Mean turns for turns = 1 + floor(u^2 * max): E[u^2] = 1/3.
  double mean_turns = 1.0 + config_.max_tool_calls / 3.0;
  return mean_turns * turn_lengths_.mean_estimate() * 1.1;
}

double WorkloadGenerator::ExpectedTotalTokens() const {
  double prompt =
      0.5 * static_cast<double>(config_.prompt_tokens_min + config_.prompt_tokens_max);
  return prompt + ExpectedResponseTokens();
}

}  // namespace laminar
