// Workload generator: turns (task, prompt id, weight version) into a
// TrajectorySpec describing the generation work, deterministically per seed.
#ifndef LAMINAR_SRC_WORKLOAD_GENERATOR_H_
#define LAMINAR_SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/workload/length_model.h"
#include "src/workload/trajectory_spec.h"

namespace laminar {

enum class TaskKind {
  kMathReasoning,  // single-turn chain-of-thought (DAPO-Math-17k)
  kToolCalling,    // multi-turn with code sandbox (ReTool-style)
};

const char* TaskKindName(TaskKind kind);

struct WorkloadConfig {
  TaskKind task = TaskKind::kMathReasoning;
  ModelScale scale = ModelScale::k7B;
  int64_t prompt_tokens_min = 256;
  int64_t prompt_tokens_max = 2048;  // paper: max input length 2K
  int max_tool_calls = 8;            // paper setting for tool calling
  // If true, lengths drift upward with the weight version (paper §2.3).
  bool length_drift = false;
  // Multiplier on sampled environment latencies (RlSystemConfig::
  // hardware_speed time dilation). Token counts are never scaled.
  double time_scale = 1.0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, Rng rng);

  // Samples the generation plan for one trajectory. `weight_version` only
  // matters when length drift is enabled.
  TrajectorySpec Sample(int weight_version);

  // Expected total tokens (prompt + response + feedback) per trajectory,
  // used for placement sanity checks and buffer sizing.
  double ExpectedTotalTokens() const;
  double ExpectedResponseTokens() const;

  const WorkloadConfig& config() const { return config_; }

  // Snapshot of the sampling stream — the generator's only mutable state
  // (the distributions are parameter-only and draw through rng_).
  void Snapshot(SnapshotTx& tx) { rng_.Snapshot(tx); }

 private:
  WorkloadConfig config_;
  Rng rng_;
  LengthDistribution response_lengths_;
  LengthDistribution turn_lengths_;
  EnvLatencyDistribution env_latency_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_WORKLOAD_GENERATOR_H_
