#include "src/workload/length_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace laminar {

int64_t LengthDistribution::Sample(Rng& rng) const {
  double mu = std::log(median_tokens);
  double x = rng.LogNormal(mu, sigma);
  int64_t tokens = static_cast<int64_t>(std::llround(x));
  return std::clamp(tokens, min_tokens, max_tokens);
}

double LengthDistribution::Quantile(double q) const {
  LAMINAR_CHECK(q > 0.0 && q < 1.0);
  // Inverse-CDF of the log-normal via the probit approximation
  // (Acklam/Beasley-Springer-Moro rational approximation).
  auto probit = [](double p) {
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;
    if (p < p_low) {
      double q2 = std::sqrt(-2.0 * std::log(p));
      return (((((c[0] * q2 + c[1]) * q2 + c[2]) * q2 + c[3]) * q2 + c[4]) * q2 + c[5]) /
             ((((d[0] * q2 + d[1]) * q2 + d[2]) * q2 + d[3]) * q2 + 1.0);
    }
    if (p <= 1.0 - p_low) {
      double q2 = p - 0.5;
      double r = q2 * q2;
      return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q2 /
             (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    }
    double q2 = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q2 + c[1]) * q2 + c[2]) * q2 + c[3]) * q2 + c[4]) * q2 + c[5]) /
           ((((d[0] * q2 + d[1]) * q2 + d[2]) * q2 + d[3]) * q2 + 1.0);
  };
  // Clamp exactly like Sample(): the quantile of the generated distribution,
  // not of the unclamped log-normal, so quantile-based admission and repack
  // sizing agree with the lengths actually produced.
  return std::clamp(median_tokens * std::exp(sigma * probit(q)),
                    static_cast<double>(min_tokens), static_cast<double>(max_tokens));
}

double LengthDistribution::mean_estimate() const {
  double unclamped = median_tokens * std::exp(sigma * sigma / 2.0);
  return std::min(unclamped, static_cast<double>(max_tokens));
}

LengthDistribution MathLengthDistribution(ModelScale scale) {
  LengthDistribution d;
  // Calibrated against Figure 17's per-checkpoint shapes: larger checkpoints
  // emit longer, slightly less dispersed chains of thought.
  switch (scale) {
    case ModelScale::k7B:
      d.median_tokens = 2200.0;
      d.sigma = 1.00;
      break;
    case ModelScale::k32B:
      d.median_tokens = 3000.0;
      d.sigma = 0.95;
      break;
    case ModelScale::k72B:
      d.median_tokens = 3600.0;
      d.sigma = 0.90;
      break;
  }
  return d;
}

LengthDistribution ToolTurnLengthDistribution() {
  LengthDistribution d;
  d.median_tokens = 600.0;
  d.sigma = 0.85;
  d.max_tokens = 4096;
  return d;
}

double EnvLatencyDistribution::Sample(Rng& rng) const {
  double mu = std::log(median_seconds);
  double x = rng.LogNormal(mu, sigma);
  return std::clamp(x, min_seconds, max_seconds);
}

EnvLatencyDistribution SandboxLatencyDistribution() { return EnvLatencyDistribution{}; }

double LengthDriftFactor(int weight_version, double amplitude, double tau_versions) {
  LAMINAR_CHECK_GE(weight_version, 0);
  return 1.0 + amplitude * (1.0 - std::exp(-weight_version / tau_versions));
}

}  // namespace laminar
