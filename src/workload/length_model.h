// Trajectory-length and environment-latency distributions (Figures 2 and 17).
//
// Response lengths on reasoning datasets are extremely skewed: the paper
// reports 99th-percentile lengths an order of magnitude above the median.
// We model lengths as clamped log-normals whose sigma is calibrated so that
// p99/p50 ~ 10 before clamping at the generation limit (which produces the
// truncation spike real runs show at max_tokens).
#ifndef LAMINAR_SRC_WORKLOAD_LENGTH_MODEL_H_
#define LAMINAR_SRC_WORKLOAD_LENGTH_MODEL_H_

#include <cstdint>

#include "src/cluster/placement.h"
#include "src/common/rng.h"

namespace laminar {

struct LengthDistribution {
  double median_tokens = 2500.0;
  double sigma = 1.0;          // log-space standard deviation
  int64_t min_tokens = 16;
  int64_t max_tokens = 16384;  // paper: max output length 16K

  int64_t Sample(Rng& rng) const;
  // Analytic quantile of the clamped log-normal Sample() draws from (the
  // inverse CDF, clamped to [min_tokens, max_tokens]).
  double Quantile(double q) const;
  double mean_estimate() const;
};

// Per-checkpoint response-length distribution on DAPO-Math-17k (Figure 17).
// Larger checkpoints produce longer chains of thought.
LengthDistribution MathLengthDistribution(ModelScale scale);

// Response lengths for the multi-turn tool-calling task (per decode turn the
// model emits shorter bursts; totals are governed by the generator).
LengthDistribution ToolTurnLengthDistribution();

// Code-sandbox execution latency (Figure 2 right): heavy-tailed due to
// queueing and task complexity; seconds.
struct EnvLatencyDistribution {
  double median_seconds = 2.0;
  double sigma = 1.1;
  double min_seconds = 0.2;
  double max_seconds = 120.0;

  double Sample(Rng& rng) const;
};

EnvLatencyDistribution SandboxLatencyDistribution();

// Multiplier applied to trajectory lengths as training progresses: reasoning
// RL runs show response lengths growing before stabilizing (paper §2.3).
double LengthDriftFactor(int weight_version, double amplitude = 0.35,
                         double tau_versions = 60.0);

}  // namespace laminar

#endif  // LAMINAR_SRC_WORKLOAD_LENGTH_MODEL_H_
