#include "src/workload/serving_traffic.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/snapshot/snapshot.h"

namespace laminar {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

ServingTrafficGenerator::ServingTrafficGenerator(ServingTrafficConfig config, Rng rng)
    : config_(config), rng_(rng) {
  LAMINAR_CHECK(config_.base_rate_per_sec > 0.0);
  LAMINAR_CHECK(config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude < 1.0);
  LAMINAR_CHECK(config_.diurnal_period_seconds > 0.0);
  prompt_lengths_.median_tokens = config_.prompt_median_tokens;
  prompt_lengths_.sigma = config_.prompt_sigma;
  prompt_lengths_.min_tokens = config_.prompt_min_tokens;
  prompt_lengths_.max_tokens = config_.prompt_max_tokens;
  decode_lengths_.median_tokens = config_.decode_median_tokens;
  decode_lengths_.sigma = config_.decode_sigma;
  decode_lengths_.min_tokens = config_.decode_min_tokens;
  decode_lengths_.max_tokens = config_.decode_max_tokens;
  clock_seconds_ = config_.start_seconds;
}

double ServingTrafficGenerator::RateAt(double t) const {
  const double phase = kTwoPi * t / config_.diurnal_period_seconds + config_.phase_radians;
  return config_.base_rate_per_sec * (1.0 + config_.diurnal_amplitude * std::sin(phase));
}

double ServingTrafficGenerator::PeakRate() const {
  return config_.base_rate_per_sec * (1.0 + config_.diurnal_amplitude);
}

double ServingTrafficGenerator::ExpectedArrivals(double t0, double t1) const {
  // Integral of base * (1 + A*sin(2*pi*t/P + phi)) dt.
  const double w = kTwoPi / config_.diurnal_period_seconds;
  const double base = config_.base_rate_per_sec;
  const double amp = config_.diurnal_amplitude;
  const double linear = base * (t1 - t0);
  const double wave = -base * amp / w *
                      (std::cos(w * t1 + config_.phase_radians) -
                       std::cos(w * t0 + config_.phase_radians));
  return linear + wave;
}

ServingRequest ServingTrafficGenerator::Next() {
  // Lewis–Shedler thinning against the constant peak-rate envelope: step the
  // clock by Exp(peak) gaps and accept each candidate with probability
  // rate(t)/peak. Every candidate consumes exactly two draws, so the stream
  // position after n arrivals depends only on the seed and the rate curve.
  const double peak = PeakRate();
  for (;;) {
    clock_seconds_ += rng_.Exponential(peak);
    const double accept = RateAt(clock_seconds_) / peak;
    if (rng_.Uniform() < accept) {
      break;
    }
  }
  ServingRequest req;
  req.seq = next_seq_++;
  req.arrival_seconds = clock_seconds_;
  req.prompt_tokens = prompt_lengths_.Sample(rng_);
  req.decode_tokens = decode_lengths_.Sample(rng_);
  req.deadline_seconds = req.arrival_seconds + config_.slo_base_seconds +
                         static_cast<double>(req.decode_tokens) * config_.slo_per_token_seconds;
  return req;
}

void ServingTrafficGenerator::Snapshot(SnapshotTx& tx) {
  rng_.Snapshot(tx);
  tx.F64("clock_seconds", &clock_seconds_);
  tx.I64("next_seq", &next_seq_);
}

}  // namespace laminar
