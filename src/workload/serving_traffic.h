// Online serving traffic: seeded diurnal request arrivals with per-request
// SLO deadlines (DESIGN.md §14).
//
// Arrivals follow a non-homogeneous Poisson process whose rate is modulated
// sinusoidally around a base rate — the classic diurnal load curve of a
// user-facing inference service. Requests draw prompt and decode lengths
// from clamped log-normal LengthDistributions and carry a deadline of
// arrival + slo_base + decode_tokens * slo_per_token, i.e. a time-to-first-
// token allowance plus a per-token decode budget.
//
// The generator is pure pull: Next() advances an internal clock by thinning
// (Lewis–Shedler) against the peak rate, so the sequence for a given seed is
// byte-identical regardless of how the caller schedules the arrivals.
#ifndef LAMINAR_SRC_WORKLOAD_SERVING_TRAFFIC_H_
#define LAMINAR_SRC_WORKLOAD_SERVING_TRAFFIC_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/workload/length_model.h"

namespace laminar {

struct ServingTrafficConfig {
  bool enabled = false;

  // Arrival process: rate(t) = base * (1 + amplitude * sin(2*pi*t/period +
  // phase)), requests per second. Amplitude must lie in [0, 1).
  double base_rate_per_sec = 1.0;
  double diurnal_amplitude = 0.5;
  double diurnal_period_seconds = 600.0;
  double phase_radians = 0.0;
  // Arrivals begin at start_seconds (the fleet warms up first).
  double start_seconds = 0.0;

  // Per-request length draws (clamped log-normals, see length_model.h).
  double prompt_median_tokens = 512.0;
  double prompt_sigma = 0.6;
  int64_t prompt_min_tokens = 16;
  int64_t prompt_max_tokens = 4096;
  double decode_median_tokens = 128.0;
  double decode_sigma = 0.8;
  int64_t decode_min_tokens = 8;
  int64_t decode_max_tokens = 2048;

  // SLO: deadline = arrival + slo_base + decode_tokens * slo_per_token.
  double slo_base_seconds = 30.0;
  double slo_per_token_seconds = 0.05;

  // Fleet policy knob consumed by the RolloutManager, carried here so one
  // struct configures the whole tier: 0 = colocated (serving is admitted
  // onto any rollout replica, preempting rollout decode when KV is short);
  // N > 0 = static partition (replicas [0, N) serve exclusively and the
  // rollout engine never touches them).
  int dedicated_replicas = 0;
};

struct ServingRequest {
  int64_t seq = 0;  // dense per-generator sequence number, from 0
  double arrival_seconds = 0.0;
  int64_t prompt_tokens = 0;
  int64_t decode_tokens = 0;
  double deadline_seconds = 0.0;
};

class ServingTrafficGenerator {
 public:
  ServingTrafficGenerator(ServingTrafficConfig config, Rng rng);

  // Next arrival in time order. Each call consumes a deterministic number of
  // rng draws; the sequence depends only on (config, seed).
  ServingRequest Next();

  // Instantaneous arrival rate at absolute time t (requests/second).
  double RateAt(double t) const;
  // Thinning envelope: base * (1 + amplitude).
  double PeakRate() const;
  // Analytic integral of RateAt over [t0, t1] — the expected arrival count,
  // used by the property tests to cross-check empirical counts.
  double ExpectedArrivals(double t0, double t1) const;

  const ServingTrafficConfig& config() const { return config_; }

  // Snapshot witness: the rng stream, the thinning clock, and the sequence
  // counter — the generator's only mutable state.
  void Snapshot(SnapshotTx& tx);

 private:
  ServingTrafficConfig config_;
  Rng rng_;
  LengthDistribution prompt_lengths_;
  LengthDistribution decode_lengths_;
  double clock_seconds_ = 0.0;
  int64_t next_seq_ = 0;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_WORKLOAD_SERVING_TRAFFIC_H_
