// The shape of one trajectory's generation work.
//
// A trajectory alternates decode segments with (optional) environment
// interactions. Single-turn math reasoning is one decode segment; multi-turn
// tool calling interleaves decode segments with code-sandbox calls whose
// results are appended to the context as feedback tokens (which must be
// prefilled, not decoded).
#ifndef LAMINAR_SRC_WORKLOAD_TRAJECTORY_SPEC_H_
#define LAMINAR_SRC_WORKLOAD_TRAJECTORY_SPEC_H_

#include <cstdint>
#include <vector>

namespace laminar {

struct TrajectorySegment {
  int64_t decode_tokens = 0;     // tokens generated auto-regressively
  double env_latency = 0.0;      // sandbox/API wait after this segment (0 if none)
  int64_t feedback_tokens = 0;   // env output appended to context after the wait
};

struct TrajectorySpec {
  int64_t prompt_tokens = 0;
  std::vector<TrajectorySegment> segments;

  int64_t total_decode_tokens() const {
    int64_t n = 0;
    for (const auto& s : segments) {
      n += s.decode_tokens;
    }
    return n;
  }
  int64_t total_feedback_tokens() const {
    int64_t n = 0;
    for (const auto& s : segments) {
      n += s.feedback_tokens;
    }
    return n;
  }
  // Final context length once fully generated.
  int64_t total_context_tokens() const {
    return prompt_tokens + total_decode_tokens() + total_feedback_tokens();
  }
  double total_env_latency() const {
    double t = 0.0;
    for (const auto& s : segments) {
      t += s.env_latency;
    }
    return t;
  }
  int num_turns() const { return static_cast<int>(segments.size()); }
};

}  // namespace laminar

#endif  // LAMINAR_SRC_WORKLOAD_TRAJECTORY_SPEC_H_
