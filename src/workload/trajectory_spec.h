// The shape of one trajectory's generation work.
//
// A trajectory alternates decode segments with (optional) environment
// interactions. Single-turn math reasoning is one decode segment; multi-turn
// tool calling interleaves decode segments with code-sandbox calls whose
// results are appended to the context as feedback tokens (which must be
// prefilled, not decoded).
//
// The segment list is immutable once a trajectory enters the pipeline, yet a
// record is copied many times on its way through it (replica -> partial pool
// -> experience buffer -> trainer batch). Segments therefore live in a
// shared refcounted store: copying a spec bumps a refcount instead of
// cloning the vector, so pipeline hand-off never allocates (DESIGN.md §11).
// The mutators below are copy-on-write for the builders (workload generator,
// tests) that shape a spec before or after it is wrapped in a record.
#ifndef LAMINAR_SRC_WORKLOAD_TRAJECTORY_SPEC_H_
#define LAMINAR_SRC_WORKLOAD_TRAJECTORY_SPEC_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace laminar {

struct TrajectorySegment {
  int64_t decode_tokens = 0;     // tokens generated auto-regressively
  double env_latency = 0.0;      // sandbox/API wait after this segment (0 if none)
  int64_t feedback_tokens = 0;   // env output appended to context after the wait
};

struct TrajectorySpec {
  int64_t prompt_tokens = 0;

  const std::vector<TrajectorySegment>& segments() const {
    static const std::vector<TrajectorySegment> kEmpty;
    return segments_ ? *segments_ : kEmpty;
  }
  size_t num_segments() const { return segments_ ? segments_->size() : 0; }

  // Copy-on-write builders: a spec whose store is shared with other copies
  // clones it before mutating, so those copies are never affected.
  void AppendSegment(const TrajectorySegment& seg) { MutableSegments().push_back(seg); }
  void ClearSegments() { segments_.reset(); }
  void ReserveSegments(size_t n) { MutableSegments().reserve(n); }

  int64_t total_decode_tokens() const {
    int64_t n = 0;
    for (const auto& s : segments()) {
      n += s.decode_tokens;
    }
    return n;
  }
  int64_t total_feedback_tokens() const {
    int64_t n = 0;
    for (const auto& s : segments()) {
      n += s.feedback_tokens;
    }
    return n;
  }
  // Final context length once fully generated.
  int64_t total_context_tokens() const {
    return prompt_tokens + total_decode_tokens() + total_feedback_tokens();
  }
  double total_env_latency() const {
    double t = 0.0;
    for (const auto& s : segments()) {
      t += s.env_latency;
    }
    return t;
  }
  int num_turns() const { return static_cast<int>(num_segments()); }

 private:
  std::vector<TrajectorySegment>& MutableSegments() {
    if (!segments_) {
      segments_ = std::make_shared<std::vector<TrajectorySegment>>();
    } else if (segments_.use_count() > 1) {
      segments_ = std::make_shared<std::vector<TrajectorySegment>>(*segments_);
    }
    return *segments_;
  }

  std::shared_ptr<std::vector<TrajectorySegment>> segments_;
};

}  // namespace laminar

#endif  // LAMINAR_SRC_WORKLOAD_TRAJECTORY_SPEC_H_
