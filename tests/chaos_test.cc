// Chaos harness: the full Laminar system under seeded random fault schedules
// with the invariant checker armed. Each seed's run must be bit-reproducible
// (run-to-run and across sweep thread counts) and finish with zero invariant
// violations; a dedicated drill checks that a fail-slow replica — invisible
// to heartbeats by construction — is caught by the slowness score, drained,
// and that throughput recovers.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/laminar_system.h"
#include "src/core/report_io.h"
#include "src/core/run.h"
#include "src/exp/sweep.h"
#include "src/fault/invariants.h"

namespace laminar {
namespace {

constexpr int kNumChaosSeeds = 16;

// A small-but-real Laminar run with every fault class armed. Rates are far
// above production (tens of events/hour) so even a short run sees a dense
// mix of fail-stop, transient, and gray faults.
RlSystemConfig ChaosConfig(uint64_t chaos_seed) {
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.group_size = 8;
  cfg.num_minibatches = 4;
  cfg.max_concurrency = 128;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 2;
  cfg.seed = 99;
  cfg.chaos_enabled = true;
  cfg.chaos_seed = chaos_seed;
  // The run only lasts a few simulated minutes, so the schedule window opens
  // early and the rates are extreme — every seed must see a dense fault mix.
  cfg.chaos.start_seconds = 30.0;
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.chaos.machine_fail_per_hour = 2.0;
  cfg.chaos.relay_fail_per_hour = 8.0;
  cfg.chaos.master_fail_per_hour = 4.0;
  cfg.chaos.trainer_fail_per_hour = 4.0;
  cfg.chaos.machine_stall_per_hour = 60.0;
  cfg.chaos.link_flap_per_hour = 60.0;
  cfg.chaos.replica_slow_per_hour = 20.0;
  cfg.chaos.message_drop_per_hour = 120.0;
  cfg.invariants_enabled = true;
  return cfg;
}

// The sweep fingerprint plus the chaos counters (which the summary CSV
// deliberately omits): everything that must be bit-identical across runs.
std::string ChaosFingerprint(const SystemReport& rep) {
  char chaos[256];
  std::snprintf(chaos, sizeof(chaos), "faults=%lld slow=%lld/%lld dup=%lld drop=%lld inv=%lld/%lld\n",
                static_cast<long long>(rep.faults_injected),
                static_cast<long long>(rep.slow_events),
                static_cast<long long>(rep.slow_recoveries),
                static_cast<long long>(rep.duplicates_suppressed),
                static_cast<long long>(rep.trajectories_dropped),
                static_cast<long long>(rep.invariant_checks),
                static_cast<long long>(rep.invariant_violations));
  return ReportSummaryCsv(rep) + IterationsCsv(rep) + SeriesCsv(rep) +
         StalenessCsv(rep) + chaos;
}

TEST(ChaosTest, SeededSchedulesHoldInvariantsAndReproduceBitForBit) {
  std::vector<RlSystemConfig> grid;
  for (int seed = 0; seed < kNumChaosSeeds; ++seed) {
    grid.push_back(ChaosConfig(static_cast<uint64_t>(seed)));
  }

  SweepOptions four;
  four.num_threads = 4;
  std::vector<SystemReport> a = RunExperiments(grid, four);
  SweepOptions two;
  two.num_threads = 2;
  std::vector<SystemReport> b = RunExperiments(grid, two);

  ASSERT_EQ(a.size(), grid.size());
  ASSERT_EQ(b.size(), grid.size());
  int64_t total_faults = 0;
  for (int seed = 0; seed < kNumChaosSeeds; ++seed) {
    // Chaos actually happened and the system survived it audited.
    EXPECT_GT(a[seed].faults_injected, 0) << "seed " << seed;
    EXPECT_GT(a[seed].invariant_checks, 0) << "seed " << seed;
    EXPECT_EQ(a[seed].invariant_violations, 0) << "seed " << seed;
    EXPECT_GT(a[seed].iterations_completed, 0) << "seed " << seed;
    total_faults += a[seed].faults_injected;
    // Same seed, different sweep thread count: bit-identical outcome.
    EXPECT_EQ(ChaosFingerprint(a[seed]), ChaosFingerprint(b[seed])) << "seed " << seed;
  }
  EXPECT_GT(total_faults, kNumChaosSeeds);

  // Spot-check the serial path against the parallel sweep as well.
  for (int seed : {0, 7}) {
    SystemReport serial = RunExperiment(grid[seed]);
    EXPECT_EQ(ChaosFingerprint(serial), ChaosFingerprint(a[seed])) << "seed " << seed;
  }
}

TEST(ChaosTest, FailSlowReplicaIsDetectedDrainedAndRecovered) {
  // The 16-GPU test config is backlog-throttled (generation rate ramps down
  // over the run), so this drill uses the paper's throughput regime — 32B,
  // 64 trainer + 64 rollout GPUs — where the fault-free generation rate is
  // flat and the pre-fault window is a meaningful baseline.
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = ModelScale::k32B;
  cfg.total_gpus = 128;
  cfg.global_batch = 8192;
  cfg.group_size = 16;
  cfg.num_minibatches = 16;
  cfg.max_concurrency = 1024;
  cfg.warmup_iterations = 2;
  cfg.measure_iterations = 2;
  cfg.sample_period_seconds = 20.0;
  cfg.seed = 2026;
  cfg.invariants_enabled = true;

  const double kFaultAt = 600.0;
  const double kDuration = 400.0;
  auto driver = MakeDriver(cfg);
  auto* sys = static_cast<LaminarSystem*>(driver.get());
  // One of 16 replicas drops to 25% throughput — but never stops beating.
  sys->ScheduleFault({kFaultAt, FaultKind::kReplicaSlow, 0, kDuration, 0.25});
  SystemReport rep = driver->Run();

  // The heartbeat detector, by construction, can never flag a fail-slow
  // replica: it still beats. Only the slowness score catches it.
  EXPECT_EQ(sys->heartbeats()->failures_reported(), 0);
  EXPECT_GE(rep.slow_events, 1);
  EXPECT_GE(rep.slow_recoveries, 1);
  // Quarantine drained real work off the sick replica onto healthy peers.
  EXPECT_GT(sys->manager()->stats().trajectories_drained_slow, 0);
  EXPECT_EQ(rep.invariant_violations, 0);

  // Generation throughput is back to >=90% of the pre-fault (fault-free)
  // level shortly after the fault heals.
  EXPECT_TRUE(ThroughputRecovered(rep.generation_rate, SimTime(kFaultAt),
                                  SimTime(kFaultAt + kDuration + 60.0),
                                  /*window_seconds=*/180.0, /*ratio=*/0.9));
}

TEST(ChaosTest, ScriptedDrillIsAStrictSupersetPath) {
  // The same scripted machine kill, queued pre-Run through the chaos
  // injector, is deterministic run to run — the scripted path and the chaos
  // path share handlers, so a chaos seed that breaks something is replayable
  // as a script.
  auto run_once = [] {
    RlSystemConfig cfg = ChaosConfig(0);
    cfg.chaos_enabled = false;
    auto driver = MakeDriver(cfg);
    auto* sys = static_cast<LaminarSystem*>(driver.get());
    sys->ScheduleFault({100.0, FaultKind::kRolloutMachine, 0});
    SystemReport rep = driver->Run();
    EXPECT_EQ(rep.faults_injected, 1);
    EXPECT_EQ(rep.invariant_violations, 0);
    return ChaosFingerprint(rep);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace laminar
