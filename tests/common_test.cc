#include <gtest/gtest.h>

#include <cmath>

#include "src/common/flags.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/trace/metrics.h"

namespace laminar {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ForkedStreamsAreIndependentOfParentDraws) {
  Rng parent1(7);
  Rng parent2(7);
  // Consume draws on one parent only; forks must still agree.
  for (int i = 0; i < 50; ++i) {
    parent1.Uniform();
  }
  Rng child1 = parent1.Fork("workload");
  Rng child2 = parent2.Fork("workload");
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child1.Uniform(), child2.Uniform());
  }
}

TEST(RngTest, ForkNamesProduceDistinctStreams) {
  Rng root(7);
  Rng a = root.Fork("a");
  Rng b = root.Fork("b");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, LogNormalMedianApproximatelyExpMu) {
  Rng rng(5);
  SampleSet s;
  for (int i = 0; i < 20000; ++i) {
    s.Add(rng.LogNormal(std::log(100.0), 0.8));
  }
  EXPECT_NEAR(s.Median(), 100.0, 5.0);
}

TEST(RngTest, ParetoIsHeavyTailed) {
  Rng rng(5);
  SampleSet s;
  for (int i = 0; i < 20000; ++i) {
    s.Add(rng.Pareto(1.0, 1.5));
  }
  EXPECT_GE(s.min(), 1.0);
  EXPECT_GT(s.Quantile(0.99) / s.Median(), 5.0);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(3);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.Categorical(w)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(StreamingStatTest, MeanVarianceMinMax) {
  StreamingStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(SampleSetTest, ExactQuantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.99), 99.01, 0.5);
}

TEST(StepIntegratorTest, TimeWeightedAverage) {
  StepIntegrator g;
  g.Set(SimTime(0.0), 10.0);
  g.Set(SimTime(5.0), 20.0);  // 10 for 5 s
  // 20 for another 5 s -> average 15.
  EXPECT_DOUBLE_EQ(g.AverageUntil(SimTime(10.0)), 15.0);
  g.Set(SimTime(10.0), 0.0);
  EXPECT_DOUBLE_EQ(g.AverageUntil(SimTime(20.0)), 7.5);
}

TEST(TimeSeriesTest, MeanInWindowAndResample) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Add(SimTime(i), i);
  }
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(SimTime(2.0), SimTime(5.0)), 3.0);
  auto buckets = ts.Resample(2.0);
  ASSERT_GE(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].value, 0.5);  // points 0,1
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(i + 0.5);
  }
  h.Add(-1.0);
  h.Add(100.0);
  EXPECT_EQ(h.total_count(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.buckets()[i], 1u);
  }
}

TEST(HistogramTest, TopBoundarySampleLandsInLastBucket) {
  Histogram h(0.0, 10.0, 10);
  h.Add(10.0);  // exactly the top edge: last bucket, not overflow
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.buckets()[9], 1u);
  h.Add(10.0 + 1e-9);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(LogHistogramTest, TopBoundarySampleLandsInLastBucket) {
  LogHistogram h(1.0, 2.0, 8);
  h.Add(256.0);  // top edge of [128, 256]
  EXPECT_EQ(h.buckets()[7], 1u);
  h.Add(257.0);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.buckets()[7], 1u);  // 257 overflowed
}

TEST(LogHistogramTest, ExponentialEdges) {
  LogHistogram h(1.0, 2.0, 8);
  h.Add(1.5);   // [1,2)
  h.Add(3.0);   // [2,4)
  h.Add(100.0); // [64,128)
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[6], 1u);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 8.0);
}

TEST(TableTest, FormattingHelpers) {
  EXPECT_EQ(Table::Int(1234567.0), "1,234,567");
  EXPECT_EQ(Table::Int(-1234.0), "-1,234");
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Factor(2.5), "2.50x");
  EXPECT_EQ(Table::Pct(0.123), "12.3%");
}

TEST(TableTest, AlignedRender) {
  Table t({"a", "long-header"});
  t.AddRow({"x", "1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "a,long-header\nx,1\n");
}

TEST(FlagsTest, ParsesAllForms) {
  Flags f;
  f.Define("alpha", "1", "").Define("beta", "x", "").Define("gamma", "false", "");
  const char* argv[] = {"prog", "--alpha=5", "--beta", "hello", "--gamma"};
  ASSERT_TRUE(f.Parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(f.GetInt("alpha"), 5);
  EXPECT_EQ(f.GetString("beta"), "hello");
  EXPECT_TRUE(f.GetBool("gamma"));
}

TEST(FlagsTest, DefaultsApply) {
  Flags f;
  f.Define("x", "2.5", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.Parse(1, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(f.GetDouble("x"), 2.5);
}

TEST(SimTimeTest, ArithmeticAndFormatting) {
  SimTime t(90.0);
  EXPECT_DOUBLE_EQ((t + 30.0).seconds(), 120.0);
  EXPECT_DOUBLE_EQ(t - SimTime(30.0), 60.0);
  EXPECT_EQ(SimTime(0.5).ToString(), "500.000ms");
  EXPECT_EQ(SimTime(7200.0).ToString(), "2.00h");
  EXPECT_FALSE(SimTime::Max().is_finite());
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(Gbps(400.0), 50e9);
  EXPECT_DOUBLE_EQ(GiB(1.0), 1073741824.0);
  EXPECT_DOUBLE_EQ(Milliseconds(5.0), 0.005);
}

}  // namespace
}  // namespace laminar
