#include <gtest/gtest.h>

#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/data/experience_buffer.h"
#include "src/data/partial_response_pool.h"
#include "src/data/prompt_pool.h"
#include "src/data/recovery_order_index.h"
#include "src/data/trajectory.h"

namespace laminar {
namespace {

TrajectoryRecord Rec(TrajId id, int version, int64_t prompt_id = 0) {
  TrajectoryRecord r;
  r.id = id;
  r.prompt_id = prompt_id;
  r.weight_versions = {version};
  r.spec.prompt_tokens = 10;
  r.spec.AppendSegment({100, 0.0, 0});
  return r;
}

TEST(TrajectoryRecordTest, StalenessAndMixedVersionAccessors) {
  TrajectoryRecord r = Rec(1, 3);
  r.finish_actor_version = 5;
  r.consume_actor_version = 7;
  EXPECT_EQ(r.inherent_staleness(), 2);
  EXPECT_EQ(r.consume_staleness(), 4);
  EXPECT_FALSE(r.mixed_version());
  EXPECT_EQ(r.num_versions(), 1);
  r.weight_versions = {3, 3, 4, 5};
  EXPECT_TRUE(r.mixed_version());
  EXPECT_EQ(r.num_versions(), 3);
  EXPECT_EQ(r.generation_version(), 3);
  EXPECT_EQ(r.latest_version(), 5);
}

TEST(TrajectoryWorkTest, ProgressAccessors) {
  TrajectoryWork w;
  w.record = Rec(1, 0);
  w.record.spec.AppendSegment({50, 0.0, 0});
  w.InitContext();
  EXPECT_EQ(w.context_tokens, 10);
  EXPECT_EQ(w.remaining_decode_tokens(), 150);
  w.decoded_in_segment = 40;
  EXPECT_EQ(w.remaining_in_segment(), 60);
  EXPECT_EQ(w.remaining_decode_tokens(), 110);
  w.segment_index = 2;
  EXPECT_TRUE(w.finished());
}

TEST(PromptPoolTest, GroupsShareDifficultyAndPromptId) {
  PromptPool pool(WorkloadGenerator(WorkloadConfig{}, Rng(1)), 16, Rng(2));
  auto group = pool.NextGroup(0);
  ASSERT_EQ(group.size(), 16u);
  for (const auto& rec : group) {
    EXPECT_EQ(rec.prompt_id, group[0].prompt_id);
    EXPECT_DOUBLE_EQ(rec.difficulty, group[0].difficulty);
  }
  // Ids are unique and group indices dense.
  for (size_t i = 0; i < group.size(); ++i) {
    EXPECT_EQ(group[i].group_index, static_cast<int>(i));
  }
}

TEST(PromptPoolTest, BatchMustBeWholeGroups) {
  PromptPool pool(WorkloadGenerator(WorkloadConfig{}, Rng(1)), 16, Rng(2));
  auto batch = pool.NextBatch(64, 0);
  EXPECT_EQ(batch.size(), 64u);
  EXPECT_EQ(pool.prompts_issued(), 4);
  EXPECT_DEATH(pool.NextBatch(10, 0), "whole number");
}

TEST(ExperienceBufferTest, FifoSamplesOldestFirst) {
  ExperienceBuffer buf(MakeFifoSampler());
  for (int i = 0; i < 10; ++i) {
    buf.Push(Rec(i, i));
  }
  EXPECT_TRUE(buf.CanSample(10));
  auto batch = buf.Sample(3, 10);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_EQ(batch[2].id, 2);
  EXPECT_EQ(buf.size(), 7u);
  // Consume version stamped.
  EXPECT_EQ(batch[0].consume_actor_version, 10);
}

TEST(ExperienceBufferTest, FreshnessSamplerPrefersNewVersions) {
  ExperienceBuffer buf(MakeFreshnessSampler());
  buf.Push(Rec(0, 1));
  buf.Push(Rec(1, 5));
  buf.Push(Rec(2, 3));
  auto batch = buf.Sample(2, 6);
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(batch[1].id, 2);
}

TEST(ExperienceBufferTest, StalenessCappedSkipsStaleWhenPossible) {
  ExperienceBuffer buf(MakeStalenessCappedSampler(2));
  buf.Push(Rec(0, 0));  // staleness 10 at version 10
  buf.Push(Rec(1, 9));
  buf.Push(Rec(2, 10));
  auto batch = buf.Sample(2, 10);
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(batch[1].id, 2);
}

TEST(ExperienceBufferTest, StalenessCappedFallsBackWhenStarved) {
  ExperienceBuffer buf(MakeStalenessCappedSampler(2));
  buf.Push(Rec(0, 0));
  buf.Push(Rec(1, 0));
  auto batch = buf.Sample(2, 10);  // all stale; must still fill
  EXPECT_EQ(batch.size(), 2u);
}

TEST(ExperienceBufferTest, StalenessCappedFallbackPrefersLeastStale) {
  // Regression: the fallback used to fill from the lowest buffer index — the
  // oldest, most-stale data — instead of the least-stale over-bound records.
  ExperienceBuffer buf(MakeStalenessCappedSampler(2));
  buf.Push(Rec(0, 0));   // staleness 10 at actor version 10
  buf.Push(Rec(1, 5));   // staleness 5
  buf.Push(Rec(2, 9));   // staleness 1: within bound
  auto batch = buf.Sample(2, 10);
  ASSERT_EQ(batch.size(), 2u);
  // One fresh record plus the least-stale fallback (id 1, not id 0).
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(batch[1].id, 2);
}

TEST(ExperienceBufferTest, StalenessCappedFallbackScansWholeBuffer) {
  // The least-stale over-bound record may sit anywhere in the buffer, so the
  // classification pass must consider every record (no early exit) before the
  // fallback ranks the over-bound ones.
  ExperienceBuffer buf(MakeStalenessCappedSampler(1));
  buf.Push(Rec(0, 0));   // staleness 10
  buf.Push(Rec(1, 10));  // fresh
  buf.Push(Rec(2, 3));   // staleness 7
  buf.Push(Rec(3, 8));   // staleness 2: least stale of the over-bound, last
  auto batch = buf.Sample(2, 10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(batch[1].id, 3);
}

TEST(ExperienceBufferTest, DropOldestEviction) {
  ExperienceBuffer buf(MakeFifoSampler(), 3, EvictionPolicy::kDropOldest);
  for (int i = 0; i < 5; ++i) {
    buf.Push(Rec(i, i));
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.total_evicted(), 2);
  auto batch = buf.Sample(1, 5);
  EXPECT_EQ(batch[0].id, 2);
}

TEST(ExperienceBufferTest, DropStalestEviction) {
  ExperienceBuffer buf(MakeFifoSampler(), 2, EvictionPolicy::kDropStalest);
  buf.Push(Rec(0, 7));
  buf.Push(Rec(1, 2));
  buf.Push(Rec(2, 9));  // evicts id 1 (version 2)
  auto batch = buf.Sample(2, 9);
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_EQ(batch[1].id, 2);
}

TEST(ExperienceBufferTest, CountsTokens) {
  ExperienceBuffer buf(MakeFifoSampler());
  buf.Push(Rec(0, 0));
  EXPECT_EQ(buf.total_tokens_pushed(), 110);
}

TEST(PartialResponsePoolTest, UpdateRemoveAndTakeByReplica) {
  PartialResponsePool pool;
  TrajectoryWork w1;
  w1.record = Rec(1, 0);
  w1.InitContext();
  w1.context_tokens = 500;
  w1.kv_resident = true;
  TrajectoryWork w2;
  w2.record = Rec(2, 0);
  w2.InitContext();
  pool.Update(w1, /*owner=*/3);
  pool.Update(w2, /*owner=*/4);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.total_context_tokens(), 510);

  auto lost = pool.TakeByReplica(3);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].record.id, 1);
  // The cache died with the machine.
  EXPECT_FALSE(lost[0].kv_resident);
  EXPECT_EQ(pool.size(), 1u);

  EXPECT_TRUE(pool.Remove(2));
  EXPECT_FALSE(pool.Remove(2));
  EXPECT_EQ(pool.size(), 0u);
}

TEST(PartialResponsePoolTest, UpdateOverwritesProgress) {
  PartialResponsePool pool;
  TrajectoryWork w;
  w.record = Rec(1, 0);
  w.InitContext();
  pool.Update(w, 0);
  w.decoded_in_segment = 42;
  pool.Update(w, 0);
  auto got = pool.TakeByReplica(0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].decoded_in_segment, 42);
  EXPECT_EQ(pool.updates(), 2);
}

TEST(PartialResponsePoolTest, RemoveOfMissingIdStillTombstones) {
  PartialResponsePool pool;
  // A trajectory that finished without ever checkpointing has no live entry,
  // but its completion must still enter the terminal ledger.
  EXPECT_FALSE(pool.Remove(7));
  EXPECT_TRUE(pool.IsTerminal(7));
  EXPECT_EQ(pool.completed(), 1);
  // ...so a late Update from a stale owner cannot resurrect it.
  TrajectoryWork w;
  w.record = Rec(7, 0);
  w.InitContext();
  EXPECT_FALSE(pool.Update(w, /*owner=*/0));
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.stale_updates(), 1);
}

// Found by the scenario fuzzer (tests/corpus/env_boundary_restore.scenario):
// FinishSegment checkpoints a trajectory when it enters its sandbox call, at
// which point the current segment is fully decoded but not yet advanced. If
// the hosting machine then dies, restoring that checkpoint verbatim hands
// AssignWork a trajectory with remaining_in_segment() == 0, which trips the
// replica's progress check. The restore must resolve the env interaction the
// same way ExtractAllWork does: append the feedback, advance the segment.
TEST(PartialResponsePoolTest, RestoreResolvesEnvBoundaryCheckpoint) {
  PartialResponsePool pool;
  TrajectoryWork w;
  w.record = Rec(1, 0);
  w.record.spec.prompt_tokens = 10;
  w.record.spec.ClearSegments();
  w.record.spec.AppendSegment({/*decode=*/100, /*env_latency=*/3.0, /*feedback=*/64});
  w.record.spec.AppendSegment({/*decode=*/50, 0.0, 0});
  w.InitContext();
  w.context_tokens = 110;     // prompt + the fully decoded first segment
  w.decoded_in_segment = 100; // at the env boundary: remaining_in_segment() == 0
  w.kv_resident = true;
  pool.Update(w, /*owner=*/0);

  auto restored = pool.TakeByReplica(0);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].segment_index, 1);
  EXPECT_EQ(restored[0].decoded_in_segment, 0);
  EXPECT_EQ(restored[0].remaining_in_segment(), 50);
  // Sandbox output joined the context and must be re-prefilled with the rest.
  EXPECT_EQ(restored[0].context_tokens, 110 + 64);
  EXPECT_FALSE(restored[0].kv_resident);

  // A mid-segment checkpoint is restored untouched.
  TrajectoryWork mid;
  mid.record = Rec(2, 0);
  mid.record.spec.prompt_tokens = 10;
  mid.record.spec.ClearSegments();
  mid.record.spec.AppendSegment({100, 3.0, 64});
  mid.record.spec.AppendSegment({50, 0.0, 0});
  mid.InitContext();
  mid.context_tokens = 40;
  mid.decoded_in_segment = 30;
  pool.Update(mid, /*owner=*/0);
  auto untouched = pool.TakeByReplica(0);
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_EQ(untouched[0].segment_index, 0);
  EXPECT_EQ(untouched[0].decoded_in_segment, 30);
  EXPECT_EQ(untouched[0].context_tokens, 40);
}

TEST(PartialResponsePoolTest, TakeByReplicaWithNoMatchingEntries) {
  PartialResponsePool pool;
  EXPECT_TRUE(pool.TakeByReplica(3).empty());
  TrajectoryWork w;
  w.record = Rec(1, 0);
  w.InitContext();
  pool.Update(w, /*owner=*/2);
  // The wrong owner's take leaves other replicas' entries untouched.
  EXPECT_TRUE(pool.TakeByReplica(3).empty());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Contains(1));
}

TEST(PartialResponsePoolTest, ReUpdateByNewOwnerMovesOwnership) {
  PartialResponsePool pool;
  TrajectoryWork w;
  w.record = Rec(1, 0);
  w.InitContext();
  pool.Update(w, /*owner=*/1);

  // Migration: the manager takes the work off the failed owner and the new
  // host checkpoints it under its own id.
  auto taken = pool.TakeByReplica(1);
  ASSERT_EQ(taken.size(), 1u);
  taken[0].decoded_in_segment = 17;
  EXPECT_TRUE(pool.Update(taken[0], /*owner=*/2));

  // The old owner can no longer see (or steal back) the trajectory.
  EXPECT_TRUE(pool.TakeByReplica(1).empty());
  auto moved = pool.TakeByReplica(2);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].record.id, 1);
  EXPECT_EQ(moved[0].decoded_in_segment, 17);
}

TEST(PartialResponsePoolTest, TerminalLedgerSuppressesDuplicates) {
  PartialResponsePool pool;
  TrajectoryWork w;
  w.record = Rec(1, 0);
  w.InitContext();
  pool.Update(w, 0);

  EXPECT_TRUE(pool.MarkCompleted(1));
  // Duplicate completion (e.g. a drained replica racing its migrated clone).
  EXPECT_FALSE(pool.MarkCompleted(1));
  EXPECT_EQ(pool.completed(), 1);
  EXPECT_EQ(pool.duplicate_completions(), 1);
  // A drop after completion is also suppressed: the outcome already happened.
  EXPECT_FALSE(pool.MarkDropped(1));
  EXPECT_EQ(pool.dropped(), 0);

  // Drop-first ordering works the same way.
  EXPECT_TRUE(pool.MarkDropped(2));
  EXPECT_FALSE(pool.MarkCompleted(2));
  EXPECT_EQ(pool.dropped(), 1);
  EXPECT_EQ(pool.completed(), 1);
  EXPECT_TRUE(pool.IsTerminal(2));
}

TEST(PartialResponsePoolTest, ContextTokenTotalsTrackTakesAndCompletions) {
  PartialResponsePool pool;
  auto add = [&](TrajId id, int64_t tokens, int owner) {
    TrajectoryWork w;
    w.record = Rec(id, 0);
    w.InitContext();
    w.context_tokens = tokens;
    pool.Update(w, owner);
  };
  add(1, 500, /*owner=*/1);
  add(2, 300, /*owner=*/1);
  add(3, 200, /*owner=*/2);
  EXPECT_EQ(pool.total_context_tokens(), 1000);

  int64_t taken_tokens = 0;
  for (const TrajectoryWork& w : pool.TakeByReplica(1)) {
    taken_tokens += w.context_tokens;
  }
  EXPECT_EQ(taken_tokens, 800);
  EXPECT_EQ(pool.total_context_tokens(), 200);

  pool.MarkCompleted(3);
  EXPECT_EQ(pool.total_context_tokens(), 0);
  EXPECT_EQ(pool.size(), 0u);
}

// ---------------------------------------------------------------------------
// RecoveryOrderIndex: the pool's explicit order witness must reproduce the
// iteration order of the std::unordered_map it retired, operation for
// operation — committed corpus fingerprints depend on that order through
// TakeByReplica's recovery sequence.

void ExpectSameOrder(const RecoveryOrderIndex& idx,
                     const std::unordered_map<TrajId, EntityHandle>& ref) {
  ASSERT_EQ(idx.size(), ref.size());
  ASSERT_EQ(idx.bucket_count(), ref.bucket_count());
  auto it = idx.begin();
  for (const auto& [id, handle] : ref) {
    ASSERT_NE(it, idx.end());
    EXPECT_EQ(it->first, id);
    EXPECT_EQ(it->second, handle);
    ++it;
  }
  EXPECT_EQ(it, idx.end());
}

TEST(RecoveryOrderIndexTest, MatchesUnorderedMapOperationForOperation) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int trial = 0; trial < 30; ++trial) {
    RecoveryOrderIndex idx;
    std::unordered_map<TrajId, EntityHandle> ref;
    int ops = 1500;
    for (int op = 0; op < ops; ++op) {
      uint64_t choice = rng() % 100;
      if (choice < 60) {
        // Insert-or-overwrite through operator[], as Update() does.
        TrajId id = static_cast<TrajId>(rng() % 2500);
        EntityHandle h = EntityHandle::Pack(static_cast<uint32_t>(rng()), 1);
        idx[id] = h;
        ref[id] = h;
      } else if (choice < 85) {
        // find + erase, as MarkCompleted()/MarkDropped() do.
        TrajId id = static_cast<TrajId>(rng() % 2500);
        auto it = idx.find(id);
        auto rit = ref.find(id);
        ASSERT_EQ(it != idx.end(), rit != ref.end());
        if (rit != ref.end()) {
          EXPECT_EQ(it->second, rit->second);
          idx.erase(it);
          ref.erase(rit);
        }
      } else {
        // Conditional erase-during-scan, as TakeByReplica() does. The scan
        // itself asserts the orders agree at every node.
        uint64_t mod = 1 + rng() % 5;
        uint64_t who = rng() % mod;
        auto it = idx.begin();
        auto rit = ref.begin();
        while (rit != ref.end()) {
          ASSERT_NE(it, idx.end());
          ASSERT_EQ(it->first, rit->first);
          if (rit->second.slot() % mod == who) {
            it = idx.erase(it);
            rit = ref.erase(rit);
          } else {
            ++it;
            ++rit;
          }
        }
        EXPECT_EQ(it, idx.end());
      }
      if (op % 251 == 0) {
        ExpectSameOrder(idx, ref);
      }
    }
    ExpectSameOrder(idx, ref);
  }
}

TEST(RecoveryOrderIndexTest, RebuildFromOrderContinuesIdentically) {
  std::mt19937_64 rng(0xBADC0DE);
  RecoveryOrderIndex idx;
  std::unordered_map<TrajId, EntityHandle> ref;
  auto step = [&](int n) {
    for (int op = 0; op < n; ++op) {
      uint64_t choice = rng() % 100;
      TrajId id = static_cast<TrajId>(rng() % 800);
      if (choice < 65) {
        EntityHandle h = EntityHandle::Pack(static_cast<uint32_t>(rng()), 1);
        idx[id] = h;
        ref[id] = h;
      } else {
        auto it = idx.find(id);
        auto rit = ref.find(id);
        ASSERT_EQ(it != idx.end(), rit != ref.end());
        if (rit != ref.end()) {
          idx.erase(it);
          ref.erase(rit);
        }
      }
    }
  };
  step(700);
  ExpectSameOrder(idx, ref);

  // Serialize (bucket_count, iteration order), rebuild a fresh table from
  // the witness, and keep going: the rebuilt table must make the same
  // layout decisions as the original forever after.
  std::vector<std::pair<TrajId, EntityHandle>> entries;
  for (const auto& [id, handle] : idx) {
    entries.emplace_back(id, handle);
  }
  RecoveryOrderIndex rebuilt;
  rebuilt.RebuildFromOrder(idx.bucket_count(), entries);
  ExpectSameOrder(rebuilt, ref);

  RecoveryOrderIndex* live = &rebuilt;
  for (int op = 0; op < 900; ++op) {
    uint64_t choice = rng() % 100;
    TrajId id = static_cast<TrajId>(rng() % 800);
    if (choice < 65) {
      EntityHandle h = EntityHandle::Pack(static_cast<uint32_t>(rng()), 1);
      (*live)[id] = h;
      ref[id] = h;
    } else {
      auto it = live->find(id);
      auto rit = ref.find(id);
      ASSERT_EQ(it != live->end(), rit != ref.end());
      if (rit != ref.end()) {
        live->erase(it);
        ref.erase(rit);
      }
    }
  }
  ExpectSameOrder(rebuilt, ref);

  // The empty pre-growth table round-trips too.
  RecoveryOrderIndex empty_rebuilt;
  empty_rebuilt.RebuildFromOrder(1, {});
  EXPECT_EQ(empty_rebuilt.size(), 0u);
  EXPECT_EQ(empty_rebuilt.bucket_count(), 1u);
}

}  // namespace
}  // namespace laminar
