// Bit-exactness of the memoized decode-latency tables (DESIGN.md §11).
//
// The memo layers in DecodeModel (hoisted spec constants, per-batch HBM/TP
// rows, the (batch, context-bucket) step cache, the single-entry prefill
// memo) must be invisible: a cached answer has to be bit-identical to what a
// cold evaluation computes, or simulation runs stop being reproducible
// against the corpus fingerprints. Comparisons here are exact (==), not
// EXPECT_DOUBLE_EQ.
#include "src/llm/decode_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cluster/hardware.h"
#include "src/llm/model_spec.h"

namespace laminar {
namespace {

const int kBatches[] = {1, 2, 7, 64, 255, 1024};
const double kContexts[] = {0.5, 100.0, 1000.25, 2048.0, 4096.75, 8191.5};

TEST(DecodeModelMemoTest, WarmStepCacheMatchesColdEvaluation) {
  MachineSpec machine;
  for (int tp : {1, 4}) {
    DecodeModel warm(Qwen25_7B(), machine, tp);
    // Populate every row, then re-query: each second query must hit the
    // cache and return the identical bits a fresh model computes cold.
    for (int batch : kBatches) {
      for (double ctx : kContexts) {
        warm.StepLatency(batch, ctx);
      }
    }
    int64_t misses_after_fill = warm.step_cache_misses();
    for (int batch : kBatches) {
      for (double ctx : kContexts) {
        DecodeModel cold(Qwen25_7B(), machine, tp);
        EXPECT_EQ(warm.StepLatency(batch, ctx), cold.StepLatency(batch, ctx))
            << "tp=" << tp << " batch=" << batch << " ctx=" << ctx;
      }
    }
    // Some grid contexts share a bucket (floor(ctx/256) mod 16) and evict
    // each other, so the re-query pass mixes hits and misses — but every
    // query is accounted for, and the non-colliding rows did hit.
    int64_t grid = static_cast<int64_t>(std::size(kBatches) * std::size(kContexts));
    EXPECT_EQ(warm.step_cache_hits() + warm.step_cache_misses(), 2 * grid);
    EXPECT_GT(warm.step_cache_hits(), 0);
    EXPECT_GE(warm.step_cache_misses(), misses_after_fill);
  }
}

TEST(DecodeModelMemoTest, StepLatencyMatchesUnmemoizedFormula) {
  // The formula as written before hoisting/memoization, same operation
  // order. Hoisting only precomputes prefixes of these expressions, so the
  // results must be bit-identical, not merely close.
  MachineSpec machine;
  ModelSpec model = Qwen25_32B();
  for (int tp : {1, 8}) {
    DecodeModel m(model, machine, tp);
    for (int batch : kBatches) {
      for (double ctx : kContexts) {
        double kv_read =
            static_cast<double>(batch) * ctx * model.kv_bytes_per_token() / tp;
        double mem = (model.weight_bytes() / tp + kv_read) /
                     machine.gpu.effective_hbm_at_batch(batch);
        double flops_per_token =
            model.forward_flops_per_token() +
            4.0 * model.num_layers * ctx * model.num_heads * model.head_dim;
        double compute = static_cast<double>(batch) * flops_per_token /
                         (tp * machine.gpu.peak_flops_bf16 *
                          machine.gpu.decode_flops_efficiency);
        double tp_comm = 0.0;
        if (tp != 1) {
          double bytes_per_allreduce =
              static_cast<double>(batch) * model.hidden_size * model.bytes_per_param;
          double ring_factor = 2.0 * (tp - 1) / static_cast<double>(tp);
          double transfer =
              bytes_per_allreduce * ring_factor / machine.nvlink_bandwidth;
          const double launch = 8.0e-6 * machine.gpu.host_overhead_scale;
          tp_comm = 2.0 * model.num_layers * (transfer + launch);
        }
        double overhead = (1000.0e-6 + 12.0e-6 * model.num_layers) *
                          machine.gpu.host_overhead_scale;
        double expected = std::max(mem, compute) + tp_comm + overhead;
        // Query twice: the miss path and the hit path must both return it.
        EXPECT_EQ(m.StepLatency(batch, ctx), expected)
            << "tp=" << tp << " batch=" << batch << " ctx=" << ctx;
        EXPECT_EQ(m.StepLatency(batch, ctx), expected)
            << "cached, tp=" << tp << " batch=" << batch << " ctx=" << ctx;
      }
    }
  }
}

TEST(DecodeModelMemoTest, BucketEvictionPreservesExactness) {
  // Contexts 256 apart land in adjacent buckets; contexts 256*16 apart share
  // a bucket and evict each other. Alternating queries must keep returning
  // the cold-model value regardless of eviction churn.
  MachineSpec machine;
  DecodeModel m(Qwen25_7B(), machine, 1);
  DecodeModel cold_a(Qwen25_7B(), machine, 1);
  DecodeModel cold_b(Qwen25_7B(), machine, 1);
  const double ctx_a = 500.0;
  const double ctx_b = 500.0 + 256.0 * 16;
  double expect_a = cold_a.StepLatency(32, ctx_a);
  double expect_b = cold_b.StepLatency(32, ctx_b);
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(m.StepLatency(32, ctx_a), expect_a) << "round " << round;
    EXPECT_EQ(m.StepLatency(32, ctx_b), expect_b) << "round " << round;
  }
  // Every query after the first pair evicted the other context: all misses.
  EXPECT_EQ(m.step_cache_hits(), 0);
  EXPECT_EQ(m.step_cache_misses(), 8);
}

TEST(DecodeModelMemoTest, PrefillMemoMatchesColdEvaluation) {
  MachineSpec machine;
  DecodeModel warm(Qwen25_72B(), machine, 8);
  const double kTokens[] = {1.0, 512.0, 4096.5, 512.0, 100000.0, 512.0};
  for (double tokens : kTokens) {
    DecodeModel cold(Qwen25_72B(), machine, 8);
    EXPECT_EQ(warm.PrefillLatency(tokens), cold.PrefillLatency(tokens))
        << "tokens=" << tokens;
  }
  EXPECT_EQ(warm.PrefillLatency(0.0), 0.0);
}

TEST(DecodeModelMemoTest, ComponentAccessorsConsistentWithStep) {
  // StepLatency must equal its published decomposition even on cache hits.
  MachineSpec machine;
  DecodeModel m(Qwen25_32B(), machine, 4);
  for (int batch : kBatches) {
    for (double ctx : kContexts) {
      double expected = std::max(m.MemoryTime(batch, ctx), m.ComputeTime(batch, ctx)) +
                        m.TpCommTime(batch) + m.KernelOverhead();
      EXPECT_EQ(m.StepLatency(batch, ctx), expected);
      EXPECT_EQ(m.StepLatency(batch, ctx), expected);  // hit path
    }
  }
  EXPECT_EQ(DecodeModel(Qwen25_32B(), machine, 1).TpCommTime(64), 0.0);
}

TEST(DecodeModelMemoTest, ZeroBatchIsFree) {
  MachineSpec machine;
  DecodeModel m(Qwen25_7B(), machine, 1);
  EXPECT_EQ(m.StepLatency(0, 1000.0), 0.0);
  EXPECT_EQ(m.step_cache_hits() + m.step_cache_misses(), 0);
}

}  // namespace
}  // namespace laminar
