// Unit coverage for the generation-tagged slab (DESIGN.md §11): handle
// validity, stale-generation rejection, free-list slot reuse, and iteration
// stability under interleaved insert/remove.
#include "src/common/entity_table.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace laminar {
namespace {

TEST(EntityTableTest, InsertGetRemoveRoundTrip) {
  EntityTable<int> table;
  EXPECT_TRUE(table.empty());
  EntityHandle h = table.Insert(41);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.Get(h), nullptr);
  EXPECT_EQ(*table.Get(h), 41);
  *table.Get(h) = 42;
  EXPECT_EQ(table.Remove(h), 42);
  EXPECT_TRUE(table.empty());
}

TEST(EntityTableTest, ZeroHandleIsInvalid) {
  EntityHandle none;
  EXPECT_FALSE(none.valid());
  EntityTable<int> table;
  EXPECT_EQ(table.Get(none), nullptr);
  EXPECT_FALSE(table.Contains(none));
}

TEST(EntityTableTest, StaleGenerationAccessReturnsNull) {
  EntityTable<std::string> table;
  EntityHandle h = table.Insert("alpha");
  table.Remove(h);
  // The handle's slot is free: lookups through the old handle must miss.
  EXPECT_EQ(table.Get(h), nullptr);
  EXPECT_FALSE(table.Contains(h));
  // The slot is reused by the next insert with a bumped generation; the old
  // handle still must not alias the new occupant.
  EntityHandle fresh = table.Insert("beta");
  EXPECT_EQ(fresh.slot(), h.slot());
  EXPECT_NE(fresh.generation(), h.generation());
  EXPECT_EQ(table.Get(h), nullptr);
  ASSERT_NE(table.Get(fresh), nullptr);
  EXPECT_EQ(*table.Get(fresh), "beta");
}

TEST(EntityTableTest, FreeListReusesMostRecentlyFreedSlot) {
  EntityTable<int> table;
  EntityHandle a = table.Insert(1);
  EntityHandle b = table.Insert(2);
  EntityHandle c = table.Insert(3);
  table.Remove(a);
  table.Remove(c);
  // LIFO free list: c's slot is handed out first, then a's; only afterwards
  // does the slab grow again.
  EntityHandle r1 = table.Insert(30);
  EntityHandle r2 = table.Insert(10);
  EntityHandle r3 = table.Insert(99);
  EXPECT_EQ(r1.slot(), c.slot());
  EXPECT_EQ(r2.slot(), a.slot());
  EXPECT_GT(r3.slot(), b.slot());
  EXPECT_EQ(table.size(), 4u);
}

TEST(EntityTableTest, ForEachVisitsLiveEntriesInSlotOrder) {
  EntityTable<int> table;
  std::vector<EntityHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(table.Insert(i * 10));
  }
  table.Remove(handles[1]);
  table.Remove(handles[4]);
  std::vector<int> seen;
  table.ForEach([&seen](EntityHandle /*h*/, int& value) { seen.push_back(value); });
  EXPECT_EQ(seen, (std::vector<int>{0, 20, 30, 50}));
  // Iteration is slot-ordered, so reusing a freed slot changes WHERE the new
  // entry appears, not whether it appears exactly once.
  table.Insert(777);  // takes slot 4 (LIFO)
  seen.clear();
  table.ForEach([&seen](EntityHandle /*h*/, int& value) { seen.push_back(value); });
  EXPECT_EQ(seen, (std::vector<int>{0, 20, 30, 777, 50}));
}

TEST(EntityTableTest, IterationStableUnderRemovalDuringForEach) {
  // Collect handles first, then remove outside the loop — the pattern the
  // replica/pool code uses. ForEach itself must hand out handles that stay
  // valid for exactly the live entries.
  EntityTable<int> table;
  for (int i = 0; i < 8; ++i) {
    table.Insert(i);
  }
  std::vector<EntityHandle> evens;
  table.ForEach([&evens](EntityHandle h, int& value) {
    if (value % 2 == 0) {
      evens.push_back(h);
    }
  });
  for (EntityHandle h : evens) {
    table.Remove(h);
  }
  EXPECT_EQ(table.size(), 4u);
  std::vector<int> rest;
  table.ForEach([&rest](EntityHandle /*h*/, int& value) { rest.push_back(value); });
  EXPECT_EQ(rest, (std::vector<int>{1, 3, 5, 7}));
}

TEST(EntityTableTest, ClearFreesEverythingAndInvalidatesHandles) {
  EntityTable<int> table;
  EntityHandle a = table.Insert(1);
  EntityHandle b = table.Insert(2);
  table.Clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Get(a), nullptr);
  EXPECT_EQ(table.Get(b), nullptr);
  // The table stays usable after Clear.
  EntityHandle c = table.Insert(3);
  ASSERT_NE(table.Get(c), nullptr);
  EXPECT_EQ(*table.Get(c), 3);
}

TEST(EntityTableTest, GenerationWrapSkipsZeroOnSlotZero) {
  // Slot 0 at generation 0 would pack to the all-zero bit pattern, which is
  // the reserved "never valid" handle. Pin the generation to the 2^32 edge
  // and drive one more bump: the wrap must land on 1, not 0.
  EntityTable<int> table;
  EntityHandle h = table.Insert(7);
  ASSERT_EQ(h.slot(), 0u);
  table.SetSlotGenerationForTest(0, 0xFFFFFFFFu);
  EntityHandle edge = EntityHandle::Pack(0, 0xFFFFFFFFu);
  // A handle minted at the pinned generation still resolves...
  ASSERT_NE(table.Get(edge), nullptr);
  EXPECT_EQ(*table.Get(edge), 7);
  // ...and Remove() wraps the generation past zero.
  table.Remove(edge);
  EXPECT_EQ(table.SlotGenerationForTest(0), 1u);
  // The slot's next tenant gets a handle that is valid and distinguishable
  // from both the pre-wrap tenant and the reserved zero handle.
  EntityHandle fresh = table.Insert(8);
  EXPECT_EQ(fresh.slot(), 0u);
  EXPECT_EQ(fresh.generation(), 1u);
  EXPECT_TRUE(fresh.valid());
  EXPECT_EQ(table.Get(edge), nullptr);
  ASSERT_NE(table.Get(fresh), nullptr);
  EXPECT_EQ(*table.Get(fresh), 8);
}

TEST(EntityTableTest, GenerationWrapOnNonZeroSlotAlsoSkipsZero) {
  // Nothing in a non-zero slot packs to the reserved handle, but skipping 0
  // uniformly keeps "generation is never 0" a table-wide invariant (and the
  // wrapped-to-1 handle distinct from a 2^32-generations-stale one).
  EntityTable<int> table;
  table.Insert(1);  // slot 0
  EntityHandle h = table.Insert(2);
  ASSERT_EQ(h.slot(), 1u);
  table.SetSlotGenerationForTest(1, 0xFFFFFFFFu);
  table.Remove(EntityHandle::Pack(1, 0xFFFFFFFFu));
  EXPECT_EQ(table.SlotGenerationForTest(1), 1u);
  // The original generation-1 handle from before the pin is indistinguishable
  // from the post-wrap tenant by construction — a documented ABA horizon of
  // exactly 2^32 - 1 generations, not a validity bug.
  EntityHandle fresh = table.Insert(3);
  EXPECT_EQ(fresh.generation(), 1u);
  ASSERT_NE(table.Get(fresh), nullptr);
  EXPECT_EQ(*table.Get(fresh), 3);
}

TEST(EntityTableTest, ClearWrapsGenerationLikeRemove) {
  EntityTable<int> table;
  table.Insert(5);
  table.SetSlotGenerationForTest(0, 0xFFFFFFFFu);
  table.Clear();
  EXPECT_EQ(table.SlotGenerationForTest(0), 1u);
  EntityHandle fresh = table.Insert(6);
  EXPECT_TRUE(fresh.valid());
  EXPECT_EQ(fresh.generation(), 1u);
}

TEST(EntityTableTest, MoveOnlyPayloadsMoveThroughRemove) {
  struct MoveOnly {
    std::unique_ptr<int> p;
  };
  EntityTable<MoveOnly> table;
  MoveOnly m;
  m.p = std::make_unique<int>(7);
  EntityHandle h = table.Insert(std::move(m));
  MoveOnly out = table.Remove(h);
  ASSERT_NE(out.p, nullptr);
  EXPECT_EQ(*out.p, 7);
}

}  // namespace
}  // namespace laminar
