#include <gtest/gtest.h>

#include "src/fault/heartbeat.h"
#include "src/fault/injector.h"

namespace laminar {
namespace {

TEST(HeartbeatTest, DetectsDeathWithinBoundedDelay) {
  Simulator sim;
  std::vector<std::pair<int, double>> detected;
  HeartbeatMonitor monitor(&sim, /*period=*/1.0, /*miss_threshold=*/2,
                           [&](int node) { detected.emplace_back(node, sim.Now().seconds()); });
  monitor.Register(0);
  monitor.Register(1);
  monitor.Start();
  sim.ScheduleAt(SimTime(10.0), [&] { monitor.MarkDead(1); });
  sim.RunUntil(SimTime(30.0));
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0].first, 1);
  // Detection within (miss_threshold, miss_threshold + 1] periods.
  EXPECT_GT(detected[0].second, 10.0 + 2.0 * 1.0 - 1e-9);
  EXPECT_LE(detected[0].second, 10.0 + 3.0 * 1.0 + 1e-9);
}

TEST(HeartbeatTest, HealthyNodesNeverReported) {
  Simulator sim;
  int reports = 0;
  HeartbeatMonitor monitor(&sim, 0.5, 3, [&](int) { ++reports; });
  for (int i = 0; i < 8; ++i) {
    monitor.Register(i);
  }
  monitor.Start();
  sim.RunUntil(SimTime(100.0));
  EXPECT_EQ(reports, 0);
}

TEST(HeartbeatTest, ReviveResetsAndReportsOnlyOnce) {
  Simulator sim;
  int reports = 0;
  HeartbeatMonitor monitor(&sim, 1.0, 2, [&](int) { ++reports; });
  monitor.Register(0);
  monitor.Start();
  sim.ScheduleAt(SimTime(5.0), [&] { monitor.MarkDead(0); });
  sim.RunUntil(SimTime(20.0));
  EXPECT_EQ(reports, 1);  // dead node reported exactly once
  monitor.Revive(0);
  sim.RunUntil(SimTime(40.0));
  EXPECT_EQ(reports, 1);  // revived node is healthy again
  monitor.MarkDead(0);
  sim.RunUntil(SimTime(60.0));
  EXPECT_EQ(reports, 2);  // and can fail again
}

TEST(FaultInjectorTest, RoutesKindsToHandlers) {
  Simulator sim;
  std::vector<int> machine_faults;
  HeartbeatMonitor monitor(&sim, 1.0, 2, [&](int m) { machine_faults.push_back(m); });
  monitor.Register(5);
  monitor.Start();

  int relay_faults = 0;
  int master_faults = 0;
  int trainer_faults = 0;
  FaultInjector injector(&sim);
  injector.set_heartbeats(&monitor);
  injector.set_on_relay_fault([&](int) { ++relay_faults; });
  injector.set_on_master_fault([&] { ++master_faults; });
  injector.set_on_trainer_fault([&] { ++trainer_faults; });

  injector.ScheduleAll({
      {10.0, FaultKind::kRolloutMachine, 5},
      {20.0, FaultKind::kRelayProcess, 2},
      {30.0, FaultKind::kMasterRelay, 0},
      {40.0, FaultKind::kTrainerWorker, 0},
  });
  sim.RunUntil(SimTime(60.0));
  EXPECT_EQ(machine_faults, std::vector<int>{5});
  EXPECT_EQ(relay_faults, 1);
  EXPECT_EQ(master_faults, 1);
  EXPECT_EQ(trainer_faults, 1);
  EXPECT_EQ(injector.injected(), 4);
}

}  // namespace
}  // namespace laminar
