#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "src/fault/fault_process.h"
#include "src/fault/heartbeat.h"
#include "src/fault/injector.h"

namespace laminar {
namespace {

TEST(HeartbeatTest, DetectsDeathWithinBoundedDelay) {
  Simulator sim;
  std::vector<std::pair<int, double>> detected;
  HeartbeatMonitor monitor(&sim, /*period=*/1.0, /*miss_threshold=*/2,
                           [&](int node) { detected.emplace_back(node, sim.Now().seconds()); });
  monitor.Register(0);
  monitor.Register(1);
  monitor.Start();
  sim.ScheduleAt(SimTime(10.0), [&] { monitor.MarkDead(1); });
  sim.RunUntil(SimTime(30.0));
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0].first, 1);
  // Detection within (miss_threshold, miss_threshold + 1] periods.
  EXPECT_GT(detected[0].second, 10.0 + 2.0 * 1.0 - 1e-9);
  EXPECT_LE(detected[0].second, 10.0 + 3.0 * 1.0 + 1e-9);
}

TEST(HeartbeatTest, HealthyNodesNeverReported) {
  Simulator sim;
  int reports = 0;
  HeartbeatMonitor monitor(&sim, 0.5, 3, [&](int) { ++reports; });
  for (int i = 0; i < 8; ++i) {
    monitor.Register(i);
  }
  monitor.Start();
  sim.RunUntil(SimTime(100.0));
  EXPECT_EQ(reports, 0);
}

TEST(HeartbeatTest, ReviveResetsAndReportsOnlyOnce) {
  Simulator sim;
  int reports = 0;
  HeartbeatMonitor monitor(&sim, 1.0, 2, [&](int) { ++reports; });
  monitor.Register(0);
  monitor.Start();
  sim.ScheduleAt(SimTime(5.0), [&] { monitor.MarkDead(0); });
  sim.RunUntil(SimTime(20.0));
  EXPECT_EQ(reports, 1);  // dead node reported exactly once
  monitor.Revive(0);
  sim.RunUntil(SimTime(40.0));
  EXPECT_EQ(reports, 1);  // revived node is healthy again
  monitor.MarkDead(0);
  sim.RunUntil(SimTime(60.0));
  EXPECT_EQ(reports, 2);  // and can fail again
}

TEST(FaultInjectorTest, RoutesKindsToHandlers) {
  Simulator sim;
  std::vector<int> machine_faults;
  HeartbeatMonitor monitor(&sim, 1.0, 2, [&](int m) { machine_faults.push_back(m); });
  monitor.Register(5);
  monitor.Start();

  int relay_faults = 0;
  int master_faults = 0;
  int trainer_faults = 0;
  FaultInjector injector(&sim);
  injector.set_heartbeats(&monitor);
  injector.set_on_relay_fault([&](int) { ++relay_faults; });
  injector.set_on_master_fault([&] { ++master_faults; });
  injector.set_on_trainer_fault([&] { ++trainer_faults; });

  injector.ScheduleAll({
      {10.0, FaultKind::kRolloutMachine, 5},
      {20.0, FaultKind::kRelayProcess, 2},
      {30.0, FaultKind::kMasterRelay, 0},
      {40.0, FaultKind::kTrainerWorker, 0},
  });
  sim.RunUntil(SimTime(60.0));
  EXPECT_EQ(machine_faults, std::vector<int>{5});
  EXPECT_EQ(relay_faults, 1);
  EXPECT_EQ(master_faults, 1);
  EXPECT_EQ(trainer_faults, 1);
  EXPECT_EQ(injector.injected(), 4);
}

TEST(FaultInjectorTest, RoutesTransientKindsAndCountsPerKind) {
  Simulator sim;
  std::vector<std::pair<int, double>> stalls;
  std::vector<std::pair<int, double>> flaps;
  std::vector<std::tuple<int, double, double>> slows;
  std::vector<int> drops;
  FaultInjector injector(&sim);
  injector.set_on_machine_stall([&](int m, double d) { stalls.emplace_back(m, d); });
  injector.set_on_link_flap([&](int m, double d) { flaps.emplace_back(m, d); });
  injector.set_on_replica_slow(
      [&](int r, double sev, double d) { slows.emplace_back(r, sev, d); });
  injector.set_on_message_drop([&](int m) { drops.push_back(m); });

  injector.ScheduleAll({
      {5.0, FaultKind::kMachineStall, 1, 2.0},
      {6.0, FaultKind::kLinkFlap, 2, 1.5},
      {7.0, FaultKind::kReplicaSlow, 3, 120.0, 0.25},
      {8.0, FaultKind::kMessageDrop, 0},
      {9.0, FaultKind::kMessageDrop, 4},
  });
  sim.RunUntil(SimTime(20.0));

  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0], (std::pair<int, double>{1, 2.0}));
  ASSERT_EQ(flaps.size(), 1u);
  EXPECT_EQ(flaps[0], (std::pair<int, double>{2, 1.5}));
  ASSERT_EQ(slows.size(), 1u);
  EXPECT_EQ(slows[0], (std::tuple<int, double, double>{3, 0.25, 120.0}));
  EXPECT_EQ(drops, (std::vector<int>{0, 4}));

  EXPECT_EQ(injector.injected(), 5);
  EXPECT_EQ(injector.count(FaultKind::kMachineStall), 1);
  EXPECT_EQ(injector.count(FaultKind::kLinkFlap), 1);
  EXPECT_EQ(injector.count(FaultKind::kReplicaSlow), 1);
  EXPECT_EQ(injector.count(FaultKind::kMessageDrop), 2);
  EXPECT_EQ(injector.count(FaultKind::kRolloutMachine), 0);
  int64_t total = 0;
  for (int64_t c : injector.counts()) {
    total += c;
  }
  EXPECT_EQ(total, injector.injected());
}

TEST(FaultInjectorDeathTest, ValidatesSchedules) {
  Simulator sim;
  FaultInjector injector(&sim);
  injector.set_num_machines(4);
  injector.set_num_replicas(8);

  EXPECT_DEATH(injector.Schedule({-1.0, FaultKind::kTrainerWorker, 0}),
               "scheduled in the past");
  EXPECT_DEATH(injector.Schedule({1.0, FaultKind::kRolloutMachine, 4}),
               "targets machine");
  EXPECT_DEATH(injector.Schedule({1.0, FaultKind::kMachineStall, -1, 2.0}),
               "targets machine");
  EXPECT_DEATH(injector.Schedule({1.0, FaultKind::kReplicaSlow, 8, 10.0, 0.5}),
               "targets replica");
  EXPECT_DEATH(injector.Schedule({1.0, FaultKind::kMachineStall, 0, -2.0}),
               "negative duration");
  EXPECT_DEATH(injector.Schedule({1.0, FaultKind::kReplicaSlow, 0, 10.0, 0.0}),
               "severity");
  EXPECT_DEATH(injector.Schedule({1.0, FaultKind::kReplicaSlow, 0, 10.0, 1.5}),
               "severity");

  // In-range events under the same armed ranges are accepted.
  injector.Schedule({1.0, FaultKind::kRolloutMachine, 3});
  injector.Schedule({1.0, FaultKind::kReplicaSlow, 7, 10.0, 0.5});
}

TEST(HeartbeatDeathTest, UnregisteredNodeOperationsCheckFail) {
  Simulator sim;
  HeartbeatMonitor monitor(&sim, 1.0, 2, nullptr);
  monitor.Register(0);
  EXPECT_DEATH(monitor.MarkDead(7), "unregistered node 7");
  EXPECT_DEATH(monitor.Revive(7), "unregistered node 7");
  EXPECT_DEATH(monitor.Stall(7, 1.0), "unregistered node 7");
  EXPECT_DEATH(monitor.ObserveRate(7, 1.0), "unknown rate source 7");
}

TEST(HeartbeatTest, SweepReportsInSortedNodeOrder) {
  Simulator sim;
  std::vector<int> detected;
  HeartbeatMonitor monitor(&sim, 1.0, 2, [&](int node) { detected.push_back(node); });
  // Registration order deliberately scrambled: report order must follow node
  // ids, not insertion or hash order.
  monitor.Register(5);
  monitor.Register(1);
  monitor.Register(3);
  monitor.Start();
  sim.ScheduleAt(SimTime(4.0), [&] {
    monitor.MarkDead(5);
    monitor.MarkDead(1);
    monitor.MarkDead(3);
  });
  sim.RunUntil(SimTime(15.0));
  EXPECT_EQ(detected, (std::vector<int>{1, 3, 5}));
}

TEST(HeartbeatTest, ShortStallHealsUnnoticed) {
  Simulator sim;
  int reports = 0;
  HeartbeatMonitor monitor(&sim, 1.0, 2, [&](int) { ++reports; });
  monitor.Register(0);
  monitor.Start();
  sim.ScheduleAt(SimTime(5.0), [&] { monitor.Stall(0, 1.5); });
  sim.RunUntil(SimTime(30.0));
  EXPECT_EQ(reports, 0);
}

TEST(HeartbeatTest, LongStallEscalatesToFailureAndHealIsIgnored) {
  Simulator sim;
  std::vector<double> report_times;
  HeartbeatMonitor monitor(&sim, 1.0, 2,
                           [&](int) { report_times.push_back(sim.Now().seconds()); });
  monitor.Register(0);
  monitor.Start();
  // A 10 s freeze outlives the 2-period miss threshold: from the monitor's
  // view it is a crash, and the eventual heal must not resurrect the node.
  sim.ScheduleAt(SimTime(5.2), [&] { monitor.Stall(0, 10.0); });
  sim.RunUntil(SimTime(40.0));
  ASSERT_EQ(report_times.size(), 1u);
  EXPECT_GT(report_times[0], 5.2 + 2.0);
  EXPECT_LE(report_times[0], 5.2 + 3.0 + 1e-9);
  EXPECT_EQ(monitor.failures_reported(), 1);
}

TEST(HeartbeatTest, PhiScoreGrowsWhileSilent) {
  Simulator sim;
  // Huge miss threshold: nothing gets reported, we only watch the score.
  HeartbeatMonitor monitor(&sim, 1.0, 1000, nullptr);
  monitor.Register(0);
  monitor.Start();
  double phi_healthy = -1.0;
  double phi_early = -1.0;
  double phi_late = -1.0;
  sim.ScheduleAt(SimTime(1.5), [&] { phi_healthy = monitor.PhiScore(0); });
  sim.ScheduleAt(SimTime(2.5), [&] { monitor.MarkDead(0); });
  sim.ScheduleAt(SimTime(3.5), [&] { phi_early = monitor.PhiScore(0); });
  sim.ScheduleAt(SimTime(12.5), [&] { phi_late = monitor.PhiScore(0); });
  sim.RunUntil(SimTime(20.0));
  EXPECT_LT(phi_healthy, 0.5);
  EXPECT_GT(phi_late, phi_early + 3.0);
  EXPECT_GT(phi_late, 4.0);
}

TEST(SlownessTest, WarmupAbsorbsWithoutScoring) {
  Simulator sim;
  HeartbeatMonitor monitor(&sim, 1.0, 2, nullptr);
  int flagged = 0;
  monitor.set_on_slow([&](int) { ++flagged; });
  monitor.RegisterRateSource(0);
  // Even rock-bottom rates cannot flag a source that has no baseline yet.
  for (int i = 0; i < 3; ++i) {
    monitor.ObserveRate(0, 0.01);
  }
  EXPECT_EQ(flagged, 0);
  EXPECT_EQ(monitor.SlownessScore(0), 0.0);
}

TEST(SlownessTest, DetectsRateCollapseAfterConsecutiveStrikes) {
  Simulator sim;
  HeartbeatMonitor monitor(&sim, 1.0, 2, nullptr);
  std::vector<int> slow;
  std::vector<int> recovered;
  monitor.set_on_slow([&](int s) { slow.push_back(s); });
  monitor.set_on_slow_recovered([&](int s) { recovered.push_back(s); });
  monitor.RegisterRateSource(3);

  for (int i = 0; i < 6; ++i) {
    monitor.ObserveRate(3, 1.0);  // warmup + healthy baseline
  }
  EXPECT_FALSE(monitor.IsSlow(3));
  EXPECT_NEAR(monitor.BaselineRate(3), 1.0, 1e-9);

  // A replica running at a quarter speed: first strike arms, second reports.
  monitor.ObserveRate(3, 0.25);
  EXPECT_TRUE(slow.empty());
  monitor.ObserveRate(3, 0.25);
  EXPECT_EQ(slow, (std::vector<int>{3}));
  EXPECT_TRUE(monitor.IsSlow(3));
  EXPECT_GE(monitor.SlownessScore(3), 8.0);
  // The healthy baseline stays frozen while suspected.
  EXPECT_NEAR(monitor.BaselineRate(3), 1.0, 1e-9);

  // Still sick: no duplicate report.
  monitor.ObserveRate(3, 0.3);
  EXPECT_EQ(monitor.slow_reported(), 1);

  // Back above recovery_ratio * baseline: quarantine lifts exactly once.
  monitor.ObserveRate(3, 0.9);
  EXPECT_EQ(recovered, (std::vector<int>{3}));
  EXPECT_FALSE(monitor.IsSlow(3));
  EXPECT_EQ(monitor.slow_recovered(), 1);
}

TEST(SlownessTest, HealthyJitterNeverFlags) {
  Simulator sim;
  HeartbeatMonitor monitor(&sim, 1.0, 2, nullptr);
  int flagged = 0;
  monitor.set_on_slow([&](int) { ++flagged; });
  monitor.RegisterRateSource(0);
  // +/-5% deterministic jitter around 1.0 — normal decode-rate noise.
  for (int i = 0; i < 500; ++i) {
    double jitter = (static_cast<double>((i * 37) % 11) - 5.0) / 100.0;
    monitor.ObserveRate(0, 1.0 + jitter);
  }
  EXPECT_EQ(flagged, 0);
  EXPECT_EQ(monitor.slow_reported(), 0);
  EXPECT_FALSE(monitor.IsSlow(0));
}

TEST(SlownessTest, SingleDipDoesNotFlag) {
  Simulator sim;
  HeartbeatMonitor monitor(&sim, 1.0, 2, nullptr);
  int flagged = 0;
  monitor.set_on_slow([&](int) { ++flagged; });
  monitor.RegisterRateSource(0);
  for (int i = 0; i < 5; ++i) {
    monitor.ObserveRate(0, 1.0);
  }
  monitor.ObserveRate(0, 0.2);  // one transient dip (e.g. a prefill burst)
  monitor.ObserveRate(0, 1.0);  // back to normal resets the strike counter
  monitor.ObserveRate(0, 0.2);
  monitor.ObserveRate(0, 1.0);
  EXPECT_EQ(flagged, 0);
}

FaultProcessConfig ChaosConfigForTest() {
  FaultProcessConfig pc;
  pc.start_seconds = 100.0;
  pc.horizon_seconds = 7200.0;
  pc.num_machines = 8;
  pc.num_replicas = 16;
  pc.machine_fail_per_hour = 3.0;
  pc.relay_fail_per_hour = 2.0;
  pc.master_fail_per_hour = 1.0;
  pc.trainer_fail_per_hour = 1.0;
  pc.machine_stall_per_hour = 6.0;
  pc.link_flap_per_hour = 6.0;
  pc.replica_slow_per_hour = 4.0;
  pc.message_drop_per_hour = 8.0;
  return pc;
}

TEST(FaultProcessTest, SameSeedSameScheduleFieldForField) {
  FaultProcess proc(ChaosConfigForTest());
  std::vector<FaultEvent> a = proc.Generate(123);
  std::vector<FaultEvent> b = proc.Generate(123);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_seconds, b[i].at_seconds) << i;  // bit-exact, not NEAR
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].target, b[i].target) << i;
    EXPECT_EQ(a[i].duration_seconds, b[i].duration_seconds) << i;
    EXPECT_EQ(a[i].severity, b[i].severity) << i;
  }
  // A different seed produces a genuinely different schedule.
  std::vector<FaultEvent> c = proc.Generate(124);
  EXPECT_TRUE(a.size() != c.size() || a[0].at_seconds != c[0].at_seconds);
}

TEST(FaultProcessTest, ScheduleSortedAndWithinWindow) {
  FaultProcessConfig pc = ChaosConfigForTest();
  FaultProcess proc(pc);
  std::vector<FaultEvent> schedule = proc.Generate(7);
  ASSERT_GT(schedule.size(), 20u);
  const double end = pc.start_seconds + pc.horizon_seconds;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const FaultEvent& e = schedule[i];
    EXPECT_GE(e.at_seconds, pc.start_seconds);
    EXPECT_LT(e.at_seconds, end);
    EXPECT_GE(e.duration_seconds, 0.0);
    EXPECT_GT(e.severity, 0.0);
    EXPECT_LE(e.severity, 1.0);
    switch (e.kind) {
      case FaultKind::kRolloutMachine:
      case FaultKind::kRelayProcess:
      case FaultKind::kMessageDrop:
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, pc.num_machines);
        break;
      case FaultKind::kMachineStall:
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, pc.num_machines);
        EXPECT_GE(e.duration_seconds, pc.stall_duration_lo);
        EXPECT_LE(e.duration_seconds, pc.stall_duration_hi);
        break;
      case FaultKind::kLinkFlap:
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, pc.num_machines);
        EXPECT_GE(e.duration_seconds, pc.flap_duration_lo);
        EXPECT_LE(e.duration_seconds, pc.flap_duration_hi);
        break;
      case FaultKind::kReplicaSlow:
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, pc.num_replicas);
        EXPECT_GE(e.duration_seconds, pc.slow_duration_lo);
        EXPECT_LE(e.duration_seconds, pc.slow_duration_hi);
        EXPECT_GE(e.severity, pc.slow_factor_lo);
        EXPECT_LE(e.severity, pc.slow_factor_hi);
        break;
      case FaultKind::kMasterRelay:
      case FaultKind::kTrainerWorker:
        break;
    }
    if (i > 0) {
      const FaultEvent& p = schedule[i - 1];
      bool ordered = p.at_seconds < e.at_seconds ||
                     (p.at_seconds == e.at_seconds &&
                      (static_cast<int>(p.kind) < static_cast<int>(e.kind) ||
                       (p.kind == e.kind && p.target <= e.target)));
      EXPECT_TRUE(ordered) << "events " << i - 1 << " and " << i << " out of order";
    }
  }
}

TEST(FaultProcessTest, ClassStreamsAreIndependent) {
  // Enabling one fault class must not perturb another class's arrivals for
  // the same seed (each class forks its own Rng stream).
  FaultProcessConfig only_machines;
  only_machines.start_seconds = 50.0;
  only_machines.horizon_seconds = 7200.0;
  only_machines.num_machines = 6;
  only_machines.machine_fail_per_hour = 5.0;
  std::vector<FaultEvent> base = FaultProcess(only_machines).Generate(42);
  ASSERT_FALSE(base.empty());

  FaultProcessConfig with_flaps = only_machines;
  with_flaps.link_flap_per_hour = 20.0;
  with_flaps.num_replicas = 12;
  with_flaps.replica_slow_per_hour = 10.0;
  std::vector<FaultEvent> mixed = FaultProcess(with_flaps).Generate(42);
  EXPECT_GT(mixed.size(), base.size());

  std::vector<FaultEvent> machine_only;
  for (const FaultEvent& e : mixed) {
    if (e.kind == FaultKind::kRolloutMachine) {
      machine_only.push_back(e);
    }
  }
  ASSERT_EQ(machine_only.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(machine_only[i].at_seconds, base[i].at_seconds) << i;
    EXPECT_EQ(machine_only[i].target, base[i].target) << i;
  }
}

}  // namespace
}  // namespace laminar
