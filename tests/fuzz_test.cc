// The fuzz suite run in CI: a small seeded smoke sweep, replay of the
// committed repro corpus, and unit coverage of the oracle / shrinker
// machinery itself. The pre-release sweep is `laminar_fuzz --seeds 256`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/verify/fuzzer.h"
#include "src/verify/oracles.h"
#include "src/verify/scenario.h"
#include "src/verify/shrink.h"

namespace laminar {
namespace {

TEST(FuzzTest, SmokeSweepFindsNoFailures) {
  FuzzOptions opts;
  opts.num_seeds = 8;
  opts.shrink_failures = false;
  FuzzReport report = RunFuzz(opts);
  EXPECT_EQ(report.seeds_run, 8);
  EXPECT_GT(report.oracle_checks, 0);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FuzzTest, CommittedCorpusReplaysClean) {
  std::vector<std::string> files = ListCorpus(LAMINAR_FUZZ_CORPUS_DIR);
  ASSERT_GE(files.size(), 4u);
  for (const std::string& path : files) {
    Scenario scn;
    std::string error;
    ASSERT_TRUE(LoadScenarioFile(path, &scn, &error)) << path << ": " << error;
    OracleReport report = EvaluateScenario(scn, EvalOptions{});
    EXPECT_TRUE(report.ok()) << path << ": " << report.Summary();
  }
}

TEST(FuzzTest, ScenarioTextRoundTrips) {
  for (uint64_t seed = 0; seed <= 20; ++seed) {
    Scenario scn = GenerateScenario(seed);
    std::string text = ScenarioToText(scn);
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(ScenarioFromText(text, &parsed, &error)) << "seed " << seed << ": " << error;
    EXPECT_EQ(ScenarioToText(parsed), text) << "seed " << seed;
  }
}

TEST(FuzzTest, ScenarioParserRejectsGarbage) {
  Scenario scn;
  std::string error;
  EXPECT_FALSE(ScenarioFromText("not a scenario", &scn, &error));
  EXPECT_FALSE(ScenarioFromText(
      "# laminar fuzz scenario v1\nno_such_key=1\n", &scn, &error));
}

TEST(FuzzTest, PostApplyCheckFlagsChainedMoves) {
  std::vector<ReplicaSnapshot> snaps(3);
  for (int i = 0; i < 3; ++i) {
    snaps[i].replica_id = i;
    snaps[i].kv_used_frac = 0.1;
    snaps[i].num_reqs = 1;
  }
  RepackParams params;
  params.c_max_frac = 0.9;
  params.batch_bound = 100;
  RepackPlan chained;
  chained.moves = {{0, 1}, {1, 2}};
  auto bad = CheckRepackPlanPostApply(snaps, params, chained);
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("destination"), std::string::npos) << *bad;

  // A fan-in to one destination is legal as long as the bounds hold.
  RepackPlan fan_in;
  fan_in.moves = {{0, 2}, {1, 2}};
  EXPECT_FALSE(CheckRepackPlanPostApply(snaps, params, fan_in).has_value());

  // ...and flagged when the accumulated KV load exceeds C_max.
  params.c_max_frac = 0.25;
  auto over = CheckRepackPlanPostApply(snaps, params, fan_in);
  ASSERT_TRUE(over.has_value());
  EXPECT_NE(over->find("C_max"), std::string::npos) << *over;
}

TEST(FuzzTest, CompareLedgersDetectsTampering) {
  RunLedger a;
  a.pushes = {{0, 0, 0, 500, 1, 0}, {1, 0, 1, 700, 2, 0}};
  RunLedger b = a;
  EXPECT_FALSE(CompareLedgers(a, b, "twin").has_value());
  b.pushes[1].total_tokens = 999;
  auto bad = CompareLedgers(a, b, "twin");
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("diverged"), std::string::npos) << *bad;

  RunLedger disjoint;
  disjoint.pushes = {{7, 3, 0, 500, 1, 0}};
  EXPECT_TRUE(CompareLedgers(a, disjoint, "twin").has_value());
}

TEST(FuzzTest, ShrinkerMinimizesWhilePreservingFailure) {
  // Seed 30 carries chaos, differential twins and a large batch. A synthetic
  // failure that only needs `global_batch >= 64` lets the shrinker strip
  // everything else.
  Scenario failing = GenerateScenario(30);
  ASSERT_TRUE(failing.config.chaos_enabled);
  ASSERT_GE(failing.config.global_batch, 64);
  auto still_fails = [](const Scenario& s) { return s.config.global_batch >= 64; };
  ShrinkResult shrunk = ShrinkScenario(failing, still_fails);
  EXPECT_TRUE(still_fails(shrunk.scenario));
  EXPECT_GT(shrunk.accepted_steps, 0);
  EXPECT_FALSE(shrunk.scenario.config.chaos_enabled);
  EXPECT_FALSE(shrunk.scenario.diff_sync);
  EXPECT_FALSE(shrunk.scenario.diff_repack);
  EXPECT_LT(shrunk.scenario.config.global_batch, failing.config.global_batch);
  // The shrunk scenario still round-trips through the corpus format.
  Scenario parsed;
  std::string error;
  ASSERT_TRUE(ScenarioFromText(ScenarioToText(shrunk.scenario), &parsed, &error)) << error;
}

}  // namespace
}  // namespace laminar
