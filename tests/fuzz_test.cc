// The fuzz suite run in CI: a small seeded smoke sweep, replay of the
// committed repro corpus, and unit coverage of the oracle / shrinker
// machinery itself. The pre-release sweep is `laminar_fuzz --seeds 256`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/verify/fuzzer.h"
#include "src/verify/oracles.h"
#include "src/verify/scenario.h"
#include "src/verify/shrink.h"

namespace laminar {
namespace {

TEST(FuzzTest, SmokeSweepFindsNoFailures) {
  FuzzOptions opts;
  opts.num_seeds = 8;
  opts.shrink_failures = false;
  FuzzReport report = RunFuzz(opts);
  EXPECT_EQ(report.seeds_run, 8);
  EXPECT_GT(report.oracle_checks, 0);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FuzzTest, CommittedCorpusReplaysClean) {
  std::vector<std::string> files = ListCorpus(LAMINAR_FUZZ_CORPUS_DIR);
  ASSERT_GE(files.size(), 4u);
  for (const std::string& path : files) {
    Scenario scn;
    std::string error;
    ASSERT_TRUE(LoadScenarioFile(path, &scn, &error)) << path << ": " << error;
    OracleReport report = EvaluateScenario(scn, EvalOptions{});
    EXPECT_TRUE(report.ok()) << path << ": " << report.Summary();
  }
}

TEST(FuzzTest, ScenarioTextRoundTrips) {
  for (uint64_t seed = 0; seed <= 20; ++seed) {
    Scenario scn = GenerateScenario(seed);
    std::string text = ScenarioToText(scn);
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(ScenarioFromText(text, &parsed, &error)) << "seed " << seed << ": " << error;
    EXPECT_EQ(ScenarioToText(parsed), text) << "seed " << seed;
  }
}

TEST(FuzzTest, ScenarioParserRejectsGarbage) {
  Scenario scn;
  std::string error;
  // Structurally malformed: a non-comment line with no '='.
  EXPECT_FALSE(ScenarioFromText("not a scenario", &scn, &error));
  // A known numeric key with a non-numeric value is still an error.
  Scenario seeded = GenerateScenario(3);
  std::string bad = ScenarioToText(seeded) + "warmup=banana\n";
  EXPECT_FALSE(ScenarioFromText(bad, &scn, &error));
  // Missing required topology keys still fail, unknown key or not.
  EXPECT_FALSE(ScenarioFromText(
      "# laminar fuzz scenario v1\nno_such_key=1\n", &scn, &error));
}

TEST(FuzzTest, ScenarioParserSkipsUnknownKeysForwardCompatibly) {
  // A corpus file written by a newer binary carries keys this one has never
  // heard of — numeric or not. They warn and are skipped; everything the
  // parser does understand round-trips untouched.
  Scenario seeded = GenerateScenario(5);
  std::string text = ScenarioToText(seeded);
  std::string futuristic =
      text + "keys_from_the_future=1\nfuture_mode=adaptive-quorum\n";
  Scenario parsed;
  std::string error;
  ASSERT_TRUE(ScenarioFromText(futuristic, &parsed, &error)) << error;
  EXPECT_EQ(ScenarioToText(parsed), text);
}

TEST(FuzzTest, SnapshotAndCrashRestartKeysRoundTrip) {
  // Both keys are emitted only when armed, so files that never used them are
  // byte-identical to their pre-snapshot-era form...
  Scenario plain = GenerateScenario(2);
  plain.config.chaos.crash_restart_per_hour = 0.0;
  plain.config.snapshot_at_seconds = 0.0;
  std::string text = ScenarioToText(plain);
  EXPECT_EQ(text.find("crash_restart_rate="), std::string::npos);
  EXPECT_EQ(text.find("snapshot_at="), std::string::npos);
  // ...and when armed, both survive a text round-trip exactly.
  Scenario armed = plain;
  armed.config.chaos.crash_restart_per_hour = 12.5;
  armed.config.snapshot_at_seconds = 77.25;
  std::string armed_text = ScenarioToText(armed);
  EXPECT_NE(armed_text.find("crash_restart_rate="), std::string::npos);
  EXPECT_NE(armed_text.find("snapshot_at="), std::string::npos);
  Scenario parsed;
  std::string error;
  ASSERT_TRUE(ScenarioFromText(armed_text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.config.chaos.crash_restart_per_hour, 12.5);
  EXPECT_EQ(parsed.config.snapshot_at_seconds, 77.25);
  EXPECT_EQ(ScenarioToText(parsed), armed_text);
}

TEST(FuzzTest, PostApplyCheckFlagsChainedMoves) {
  std::vector<ReplicaSnapshot> snaps(3);
  for (int i = 0; i < 3; ++i) {
    snaps[i].replica_id = i;
    snaps[i].kv_used_frac = 0.1;
    snaps[i].num_reqs = 1;
  }
  RepackParams params;
  params.c_max_frac = 0.9;
  params.batch_bound = 100;
  RepackPlan chained;
  chained.moves = {{0, 1}, {1, 2}};
  auto bad = CheckRepackPlanPostApply(snaps, params, chained);
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("destination"), std::string::npos) << *bad;

  // A fan-in to one destination is legal as long as the bounds hold.
  RepackPlan fan_in;
  fan_in.moves = {{0, 2}, {1, 2}};
  EXPECT_FALSE(CheckRepackPlanPostApply(snaps, params, fan_in).has_value());

  // ...and flagged when the accumulated KV load exceeds C_max.
  params.c_max_frac = 0.25;
  auto over = CheckRepackPlanPostApply(snaps, params, fan_in);
  ASSERT_TRUE(over.has_value());
  EXPECT_NE(over->find("C_max"), std::string::npos) << *over;
}

TEST(FuzzTest, CompareLedgersDetectsTampering) {
  RunLedger a;
  a.pushes = {{0, 0, 0, 500, 1, 0}, {1, 0, 1, 700, 2, 0}};
  RunLedger b = a;
  EXPECT_FALSE(CompareLedgers(a, b, "twin").has_value());
  b.pushes[1].total_tokens = 999;
  auto bad = CompareLedgers(a, b, "twin");
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("diverged"), std::string::npos) << *bad;

  RunLedger disjoint;
  disjoint.pushes = {{7, 3, 0, 500, 1, 0}};
  EXPECT_TRUE(CompareLedgers(a, disjoint, "twin").has_value());
}

TEST(FuzzTest, ShrinkerMinimizesWhilePreservingFailure) {
  // Seed 30 carries chaos, differential twins and a large batch. A synthetic
  // failure that only needs `global_batch >= 64` lets the shrinker strip
  // everything else.
  Scenario failing = GenerateScenario(30);
  ASSERT_TRUE(failing.config.chaos_enabled);
  ASSERT_GE(failing.config.global_batch, 64);
  auto still_fails = [](const Scenario& s) { return s.config.global_batch >= 64; };
  ShrinkResult shrunk = ShrinkScenario(failing, still_fails);
  EXPECT_TRUE(still_fails(shrunk.scenario));
  EXPECT_GT(shrunk.accepted_steps, 0);
  EXPECT_FALSE(shrunk.scenario.config.chaos_enabled);
  EXPECT_FALSE(shrunk.scenario.diff_sync);
  EXPECT_FALSE(shrunk.scenario.diff_repack);
  EXPECT_LT(shrunk.scenario.config.global_batch, failing.config.global_batch);
  // The shrunk scenario still round-trips through the corpus format.
  Scenario parsed;
  std::string error;
  ASSERT_TRUE(ScenarioFromText(ScenarioToText(shrunk.scenario), &parsed, &error)) << error;
}

}  // namespace
}  // namespace laminar
