#include <gtest/gtest.h>

#include "src/cluster/hardware.h"
#include "src/cluster/placement.h"
#include "src/llm/decode_model.h"
#include "src/llm/model_spec.h"
#include "src/llm/train_cost.h"

namespace laminar {
namespace {

TEST(ModelSpecTest, WeightBytesBf16) {
  EXPECT_NEAR(Qwen25_7B().weight_bytes(), 2.0 * 7.62e9, 1e6);
  EXPECT_NEAR(Qwen25_72B().weight_bytes(), 2.0 * 72.7e9, 1e6);
}

TEST(ModelSpecTest, KvBytesPerTokenMatchGqaLayout) {
  // 2 (K,V) * layers * kv_heads * head_dim * 2 bytes.
  EXPECT_DOUBLE_EQ(Qwen25_7B().kv_bytes_per_token(), 2.0 * 28 * 4 * 128 * 2);
  EXPECT_DOUBLE_EQ(Qwen25_32B().kv_bytes_per_token(), 2.0 * 64 * 8 * 128 * 2);
  EXPECT_DOUBLE_EQ(Qwen25_72B().kv_bytes_per_token(), 2.0 * 80 * 8 * 128 * 2);
}

TEST(ModelSpecTest, ScaleLookup) {
  EXPECT_EQ(ModelForScale(ModelScale::k32B).name, "Qwen2.5-32B");
}

class DecodeModelTest : public ::testing::Test {
 protected:
  MachineSpec machine_;
};

TEST_F(DecodeModelTest, StepLatencyShapeVsBatch) {
  // Latency is roughly flat through the memory-bound regime (it can even dip
  // slightly as kernel efficiency ramps with batch) and grows once KV reads
  // dominate. Per-token cost must fall monotonically through the ramp.
  DecodeModel m(Qwen25_7B(), machine_, 1);
  double lat1 = m.StepLatency(1, 3000.0);
  for (int batch : {2, 8, 32, 128}) {
    double lat = m.StepLatency(batch, 3000.0);
    EXPECT_GT(lat, 0.4 * lat1);
    EXPECT_LT(lat, 6.0 * lat1);
  }
  EXPECT_GT(m.StepLatency(2048, 3000.0), m.StepLatency(64, 3000.0));
  double prev_per_token = lat1;
  for (int batch : {2, 8, 32, 128, 512}) {
    double per_token = m.StepLatency(batch, 3000.0) / batch;
    EXPECT_LT(per_token, prev_per_token);
    prev_per_token = per_token;
  }
}

TEST_F(DecodeModelTest, MemoryBoundPlateau) {
  // Figure 4's motivation: going from a tiny batch to a moderate one barely
  // moves the step latency, because the weight read dominates.
  DecodeModel m(Qwen25_32B(), machine_, 4);
  double lat8 = m.StepLatency(8, 2000.0);
  double lat64 = m.StepLatency(64, 2000.0);
  EXPECT_LT(lat64 / lat8, 1.6);
  // But per-token cost collapses with batch.
  EXPECT_GT((lat8 / 8.0) / (lat64 / 64.0), 4.0);
}

TEST_F(DecodeModelTest, TensorParallelismHasDiminishingReturns) {
  // Figure 4: adding GPUs per rollout gives only marginal latency reduction.
  ModelSpec model = Qwen25_32B();
  DecodeModel tp1(model, machine_, 1);
  DecodeModel tp4(model, machine_, 4);
  DecodeModel tp8(model, machine_, 8);
  double l1 = tp1.StepLatency(16, 2000.0);
  double l4 = tp4.StepLatency(16, 2000.0);
  double l8 = tp8.StepLatency(16, 2000.0);
  EXPECT_LT(l4, l1);
  EXPECT_LT(l8, l4);
  // 2x GPUs from TP4 to TP8 must yield well under 2x speedup.
  EXPECT_LT(l4 / l8, 1.7);
}

TEST_F(DecodeModelTest, LongContextsIncreaseKvPressure) {
  DecodeModel m(Qwen25_7B(), machine_, 1);
  EXPECT_GT(m.StepLatency(256, 8000.0), m.StepLatency(256, 1000.0));
}

TEST_F(DecodeModelTest, SmallBatchDecodingIsSlowPerToken) {
  // Solo decoding of a long-tail trajectory: O(100) tokens/s, not O(1000).
  DecodeModel m(Qwen25_7B(), machine_, 1);
  double tokens_per_sec = 1.0 / m.StepLatency(1, 4000.0);
  EXPECT_GT(tokens_per_sec, 30.0);
  EXPECT_LT(tokens_per_sec, 300.0);
}

TEST_F(DecodeModelTest, RooflineBoundIsWeightComputeCrossover) {
  DecodeModel m(Qwen25_32B(), machine_, 4);
  int bound = m.RooflineBatchBound(2000.0);
  EXPECT_GT(bound, 32);
  EXPECT_LT(bound, 2048);
  // Larger slack admits a larger bound.
  EXPECT_GT(m.RooflineBatchBound(2000.0, 1.5), bound);
  // Longer contexts mean more per-sequence attention compute: lower bound.
  EXPECT_LE(m.RooflineBatchBound(8000.0), bound);
}

TEST_F(DecodeModelTest, KvCapacityPositiveAndModelDependent) {
  DecodeModel small(Qwen25_7B(), machine_, 1);
  DecodeModel large(Qwen25_72B(), machine_, 8);
  double cap7 = small.KvCapacityTokens();
  double cap72 = large.KvCapacityTokens();
  EXPECT_GT(cap7, 100000.0);
  EXPECT_GT(cap72, 100000.0);
  // 7B per-token KV is much smaller, so its single-GPU replica still holds
  // a comparable token count to 72B on 8 GPUs.
  EXPECT_GT(cap7, cap72 * 0.3);
}

TEST_F(DecodeModelTest, ModelDoesNotFitAborts) {
  DecodeModel m(Qwen25_72B(), machine_, 1);  // 145 GB on one 80 GB GPU
  EXPECT_DEATH(m.KvCapacityTokens(), "does not fit");
}

TEST_F(DecodeModelTest, PrefillFasterThanDecodePerToken) {
  DecodeModel m(Qwen25_7B(), machine_, 1);
  double prefill_per_token = m.PrefillLatency(10000.0) / 10000.0;
  double decode_per_token = m.StepLatency(1, 2000.0);
  EXPECT_LT(prefill_per_token, decode_per_token / 10.0);
}

TEST(TrainCostTest, ScalesInverselyWithGpus) {
  TrainCostModel small(Qwen25_7B(), GpuSpec{}, 8);
  TrainCostModel big(Qwen25_7B(), GpuSpec{}, 64);
  double t_small = small.IterationTime(1e7, 16);
  double t_big = big.IterationTime(1e7, 16);
  EXPECT_GT(t_small / t_big, 5.0);
}

TEST(TrainCostTest, PipelineBubblePenalizesMegatron) {
  TrainCostModel pp1(Qwen25_72B(), GpuSpec{}, 64, TrainBackend::kMegatron, 1);
  TrainCostModel pp4(Qwen25_72B(), GpuSpec{}, 64, TrainBackend::kMegatron, 4);
  EXPECT_GT(pp4.MinibatchTime(1e6), pp1.MinibatchTime(1e6));
  EXPECT_GT(pp1.mfu(), pp4.mfu());
}

TEST(TrainCostTest, PrepIsMinorityOfIteration) {
  // Paper: experience preparation is ~7% of iteration time and the policy
  // update dominates the training stage.
  TrainCostModel m(Qwen25_7B(), GpuSpec{}, 32);
  double prep = m.ExperiencePrepTime(1e7);
  double iter = m.IterationTime(1e7, 16);
  EXPECT_LT(prep / iter, 0.5);
  EXPECT_GT(prep / iter, 0.1);
}

TEST(PlacementTest, Table2RowsResolve) {
  Placement p = GetPaperPlacement(SystemKind::kLaminar, ModelScale::k7B, 256);
  EXPECT_EQ(p.train_gpus, 192);
  EXPECT_EQ(p.rollout_gpus, 64);
  Placement v = GetPaperPlacement(SystemKind::kVerlSync, ModelScale::k32B, 128);
  EXPECT_TRUE(v.colocated);
  EXPECT_EQ(v.train_gpus, 128);
  Placement a = GetPaperPlacement(SystemKind::kPartialRollout, ModelScale::k72B, 1024);
  EXPECT_EQ(a.train_gpus, 640);
  EXPECT_EQ(a.rollout_gpus, 384);
}

TEST(PlacementTest, SplitsSumToTotal) {
  for (const Placement& p : AllPaperPlacements()) {
    if (!p.colocated) {
      EXPECT_EQ(p.train_gpus + p.rollout_gpus, p.total_gpus) << p.ToString();
    }
    EXPECT_GT(p.train_gpus, 0);
    EXPECT_GT(p.rollout_gpus, 0);
  }
}

TEST(PlacementTest, RolloutTpMatchesAppendix) {
  EXPECT_EQ(RolloutTensorParallel(SystemKind::kLaminar, ModelScale::k7B), 1);
  EXPECT_EQ(RolloutTensorParallel(SystemKind::kVerlSync, ModelScale::k7B), 2);
  EXPECT_EQ(RolloutTensorParallel(SystemKind::kOneStep, ModelScale::k32B), 4);
  EXPECT_EQ(RolloutTensorParallel(SystemKind::kLaminar, ModelScale::k72B), 8);
}

TEST(ClusterSpecTest, ForGpusDividesIntoMachines) {
  EXPECT_EQ(ClusterSpec::ForGpus(1024).num_machines, 128);
  EXPECT_EQ(ClusterSpec::ForGpus(16).num_machines, 2);
}

TEST(GpuSpecTest, HbmRampsWithBatch) {
  GpuSpec gpu;
  EXPECT_LT(gpu.effective_hbm_at_batch(1), 0.5 * gpu.effective_hbm());
  EXPECT_GT(gpu.effective_hbm_at_batch(512), 0.9 * gpu.effective_hbm());
}

}  // namespace
}  // namespace laminar
