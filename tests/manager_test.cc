// RolloutManager integration tests: assignment cycles, weight updates via
// the relay tier, backlog gating, repack execution and failure recovery.
#include <gtest/gtest.h>

#include "src/cluster/hardware.h"
#include "src/data/experience_buffer.h"
#include "src/llm/model_spec.h"
#include "src/rollout/manager.h"

namespace laminar {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 4;

  ManagerTest() : buffer_(MakeFifoSampler()) {
    DecodeModel decode(Qwen25_7B(), MachineSpec{}, 1);
    for (int i = 0; i < kReplicas; ++i) {
      ReplicaConfig rc;
      rc.id = i;
      rc.machine = i / 2;  // two replicas per machine
      rc.max_concurrency = 256;
      replicas_.push_back(
          std::make_unique<RolloutReplica>(&sim_, rc, decode, decode.KvCapacityTokens()));
      ptrs_.push_back(replicas_.back().get());
    }
    RelayTierConfig relay_cfg;
    relay_cfg.num_relays = 2;
    relay_cfg.weight_bytes = Qwen25_7B().weight_bytes();
    relays_ = std::make_unique<RelayTier>(&sim_, relay_cfg);
    WorkloadConfig wl;
    pool_ = std::make_unique<PromptPool>(WorkloadGenerator(wl, Rng(3)), 16, Rng(4));
  }

  RolloutManager MakeManager(RolloutManagerConfig cfg, int per_replica_batch = 64) {
    cfg.per_replica_batch = per_replica_batch;
    return RolloutManager(&sim_, cfg, ptrs_, relays_.get(), pool_.get(), &partial_pool_);
  }

  void WireCompletions(RolloutManager* manager) {
    for (RolloutReplica* r : ptrs_) {
      r->set_on_progress(
          [this](const TrajectoryWork& w, int id) { partial_pool_.Update(w, id); });
      r->set_on_complete([this](TrajectoryRecord rec) {
        partial_pool_.Remove(rec.id);
        buffer_.Push(std::move(rec));
      });
      r->set_on_batch_done([manager](RolloutReplica* rep) { manager->OnBatchDone(rep); });
    }
  }

  Simulator sim_;
  std::vector<std::unique_ptr<RolloutReplica>> replicas_;
  std::vector<RolloutReplica*> ptrs_;
  std::unique_ptr<RelayTier> relays_;
  std::unique_ptr<PromptPool> pool_;
  PartialResponsePool partial_pool_;
  ExperienceBuffer buffer_;
};

TEST_F(ManagerTest, StartAssignsWorkEverywhere) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  for (RolloutReplica* r : ptrs_) {
    EXPECT_TRUE(r->busy());
    EXPECT_EQ(r->num_reqs(), 64);
  }
  EXPECT_EQ(manager.stats().batches_assigned, kReplicas);
}

TEST_F(ManagerTest, BatchDoneTriggersWeightPullAndNextBatch) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  relays_->Publish(1);
  sim_.RunUntilTrue([&] { return manager.stats().batches_assigned >= kReplicas + 1; });
  // Some replica finished its batch, pulled version 1, and got a new batch.
  bool updated = false;
  for (RolloutReplica* r : ptrs_) {
    updated |= r->weight_version() == 1;
  }
  EXPECT_TRUE(updated);
}

TEST_F(ManagerTest, NoNewVersionSkipsUpdate) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntilTrue([&] { return manager.stats().batches_assigned >= kReplicas + 1; });
  for (RolloutReplica* r : ptrs_) {
    EXPECT_EQ(r->weight_version(), 0);
    EXPECT_EQ(r->metrics().weight_updates, 0);
  }
}

TEST_F(ManagerTest, BacklogCapStarvesAndPublishUnblocks) {
  RolloutManagerConfig cfg;
  cfg.backlog_cap = 1;  // gate as soon as anything is buffered
  RolloutManager manager = MakeManager(cfg);
  WireCompletions(&manager);
  manager.set_backlog_fn([this] { return static_cast<int64_t>(buffer_.size()); });
  manager.Start();
  // Run until every replica drained its first batch; all should be starved.
  sim_.RunUntilTrue([&] {
    for (RolloutReplica* r : ptrs_) {
      if (r->busy()) {
        return false;
      }
    }
    return true;
  });
  EXPECT_EQ(manager.stats().batches_assigned, kReplicas);
  // Consuming the buffer and publishing restarts generation.
  size_t n = buffer_.size();
  buffer_.Sample(n, 1);
  relays_->Publish(1);
  manager.OnActorPublish(1);
  sim_.RunUntilTrue([&] { return manager.stats().batches_assigned > kReplicas; });
  EXPECT_GT(manager.stats().batches_assigned, kReplicas);
}

TEST_F(ManagerTest, RepackConsolidatesTails) {
  RolloutManager manager = MakeManager({}, /*per_replica_batch=*/128);
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntilTrue([&] { return manager.stats().repack_events > 0; },
                    /*max_events=*/2000000);
  EXPECT_GT(manager.stats().repack_events, 0);
  EXPECT_GT(manager.stats().sources_released, 0);
  EXPECT_GT(manager.stats().trajectories_migrated, 0);
  EXPECT_GT(manager.stats().repack_overhead_seconds.count(), 0u);
}

TEST_F(ManagerTest, RepackDisabledNeverMigrates) {
  RolloutManagerConfig cfg;
  cfg.repack_enabled = false;
  RolloutManager manager = MakeManager(cfg);
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntil(SimTime(2000.0));
  EXPECT_EQ(manager.stats().repack_events, 0);
  EXPECT_EQ(manager.stats().trajectories_migrated, 0);
}

TEST_F(ManagerTest, MachineFailureRedirectsAndRevives) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntil(SimTime(30.0));
  int64_t pool_before = static_cast<int64_t>(partial_pool_.size());
  EXPECT_GT(pool_before, 0);
  manager.OnMachineFailure(0);  // kills replicas 0 and 1
  EXPECT_EQ(ptrs_[0]->phase(), ReplicaPhase::kDead);
  EXPECT_EQ(ptrs_[1]->phase(), ReplicaPhase::kDead);
  EXPECT_GT(manager.stats().trajectories_redirected, 0);
  // Survivors carry the redirected work.
  EXPECT_GT(ptrs_[2]->num_reqs(), 64);
  // Replacement machine comes back and rejoins generation.
  sim_.RunUntilTrue([&] { return ptrs_[0]->phase() == ReplicaPhase::kGenerating; },
                    5000000);
  EXPECT_TRUE(relays_->IsAlive(0));
  EXPECT_EQ(manager.stats().failures_handled, 1);
}

TEST_F(ManagerTest, FailureWithNoSameVersionHostParksWorkUntilReplacement) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntil(SimTime(20.0));
  // Move the survivors to a newer version so the dead machine's version-0
  // work has no live host.
  for (int i = 2; i < kReplicas; ++i) {
    ptrs_[i]->ExtractAllWork();
    ptrs_[i]->SetWeightVersion(1);
  }
  int64_t in_flight_on_machine0 = ptrs_[0]->num_reqs() + ptrs_[1]->num_reqs();
  EXPECT_GT(in_flight_on_machine0, 0);
  manager.OnMachineFailure(0);
  // No same-version host: work waits for the replacement.
  EXPECT_EQ(manager.stats().trajectories_redirected, 0);
  // The replacement replicas load the old checkpointed version and adopt it,
  // keeping every trajectory single-version.
  sim_.RunUntilTrue(
      [&] { return manager.stats().trajectories_redirected > 0; }, 5000000);
  EXPECT_GT(manager.stats().trajectories_redirected, 0);
  bool adopted = ptrs_[0]->weight_version() == 0 || ptrs_[1]->weight_version() == 0;
  EXPECT_TRUE(adopted);
}

TEST_F(ManagerTest, InflightCountsEverything) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  EXPECT_EQ(manager.inflight_trajectories(), kReplicas * 64);
}

}  // namespace
}  // namespace laminar
