// RolloutManager integration tests: assignment cycles, weight updates via
// the relay tier, backlog gating, repack execution and failure recovery.
#include <gtest/gtest.h>

#include "src/cluster/hardware.h"
#include "src/data/experience_buffer.h"
#include "src/llm/model_spec.h"
#include "src/rollout/manager.h"

namespace laminar {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 4;

  ManagerTest() : buffer_(MakeFifoSampler()) {
    DecodeModel decode(Qwen25_7B(), MachineSpec{}, 1);
    for (int i = 0; i < kReplicas; ++i) {
      ReplicaConfig rc;
      rc.id = i;
      rc.machine = i / 2;  // two replicas per machine
      rc.max_concurrency = 256;
      replicas_.push_back(
          std::make_unique<RolloutReplica>(&sim_, rc, decode, decode.KvCapacityTokens()));
      ptrs_.push_back(replicas_.back().get());
    }
    RelayTierConfig relay_cfg;
    relay_cfg.num_relays = 2;
    relay_cfg.weight_bytes = Qwen25_7B().weight_bytes();
    relays_ = std::make_unique<RelayTier>(&sim_, relay_cfg);
    WorkloadConfig wl;
    pool_ = std::make_unique<PromptPool>(WorkloadGenerator(wl, Rng(3)), 16, Rng(4));
  }

  RolloutManager MakeManager(RolloutManagerConfig cfg, int per_replica_batch = 64) {
    cfg.per_replica_batch = per_replica_batch;
    return RolloutManager(&sim_, cfg, ptrs_, relays_.get(), pool_.get(), &partial_pool_);
  }

  void WireCompletions(RolloutManager* manager) {
    for (RolloutReplica* r : ptrs_) {
      r->set_on_progress(
          [this](const TrajectoryWork& w, int id) { partial_pool_.Update(w, id); });
      r->set_on_complete([this](TrajectoryRecord rec) {
        partial_pool_.Remove(rec.id);
        buffer_.Push(std::move(rec));
      });
      r->set_on_batch_done([manager](RolloutReplica* rep) { manager->OnBatchDone(rep); });
    }
  }

  Simulator sim_;
  std::vector<std::unique_ptr<RolloutReplica>> replicas_;
  std::vector<RolloutReplica*> ptrs_;
  std::unique_ptr<RelayTier> relays_;
  std::unique_ptr<PromptPool> pool_;
  PartialResponsePool partial_pool_;
  ExperienceBuffer buffer_;
};

TEST_F(ManagerTest, StartAssignsWorkEverywhere) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  for (RolloutReplica* r : ptrs_) {
    EXPECT_TRUE(r->busy());
    EXPECT_EQ(r->num_reqs(), 64);
  }
  EXPECT_EQ(manager.stats().batches_assigned, kReplicas);
}

TEST_F(ManagerTest, BatchDoneTriggersWeightPullAndNextBatch) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  relays_->Publish(1);
  sim_.RunUntilTrue([&] { return manager.stats().batches_assigned >= kReplicas + 1; });
  // Some replica finished its batch, pulled version 1, and got a new batch.
  bool updated = false;
  for (RolloutReplica* r : ptrs_) {
    updated |= r->weight_version() == 1;
  }
  EXPECT_TRUE(updated);
}

TEST_F(ManagerTest, NoNewVersionSkipsUpdate) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntilTrue([&] { return manager.stats().batches_assigned >= kReplicas + 1; });
  for (RolloutReplica* r : ptrs_) {
    EXPECT_EQ(r->weight_version(), 0);
    EXPECT_EQ(r->metrics().weight_updates, 0);
  }
}

TEST_F(ManagerTest, BacklogCapStarvesAndPublishUnblocks) {
  RolloutManagerConfig cfg;
  cfg.backlog_cap = 1;  // gate as soon as anything is buffered
  RolloutManager manager = MakeManager(cfg);
  WireCompletions(&manager);
  manager.set_backlog_fn([this] { return static_cast<int64_t>(buffer_.size()); });
  manager.Start();
  // Run until every replica drained its first batch; all should be starved.
  sim_.RunUntilTrue([&] {
    for (RolloutReplica* r : ptrs_) {
      if (r->busy()) {
        return false;
      }
    }
    return true;
  });
  EXPECT_EQ(manager.stats().batches_assigned, kReplicas);
  // Consuming the buffer and publishing restarts generation.
  size_t n = buffer_.size();
  buffer_.Sample(n, 1);
  relays_->Publish(1);
  manager.OnActorPublish(1);
  sim_.RunUntilTrue([&] { return manager.stats().batches_assigned > kReplicas; });
  EXPECT_GT(manager.stats().batches_assigned, kReplicas);
}

TEST_F(ManagerTest, RepackConsolidatesTails) {
  RolloutManager manager = MakeManager({}, /*per_replica_batch=*/128);
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntilTrue([&] { return manager.stats().repack_events > 0; },
                    /*max_events=*/2000000);
  EXPECT_GT(manager.stats().repack_events, 0);
  EXPECT_GT(manager.stats().sources_released, 0);
  EXPECT_GT(manager.stats().trajectories_migrated, 0);
  EXPECT_GT(manager.stats().repack_overhead_seconds.count(), 0u);
}

TEST_F(ManagerTest, RepackDisabledNeverMigrates) {
  RolloutManagerConfig cfg;
  cfg.repack_enabled = false;
  RolloutManager manager = MakeManager(cfg);
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntil(SimTime(2000.0));
  EXPECT_EQ(manager.stats().repack_events, 0);
  EXPECT_EQ(manager.stats().trajectories_migrated, 0);
}

TEST_F(ManagerTest, MachineFailureRedirectsAndRevives) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntil(SimTime(30.0));
  int64_t pool_before = static_cast<int64_t>(partial_pool_.size());
  EXPECT_GT(pool_before, 0);
  manager.OnMachineFailure(0);  // kills replicas 0 and 1
  EXPECT_EQ(ptrs_[0]->phase(), ReplicaPhase::kDead);
  EXPECT_EQ(ptrs_[1]->phase(), ReplicaPhase::kDead);
  EXPECT_GT(manager.stats().trajectories_redirected, 0);
  // Survivors carry the redirected work.
  EXPECT_GT(ptrs_[2]->num_reqs(), 64);
  // Replacement machine comes back and rejoins generation.
  sim_.RunUntilTrue([&] { return ptrs_[0]->phase() == ReplicaPhase::kGenerating; },
                    5000000);
  EXPECT_TRUE(relays_->IsAlive(0));
  EXPECT_EQ(manager.stats().failures_handled, 1);
}

TEST_F(ManagerTest, FailureWithNoSameVersionHostParksWorkUntilReplacement) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  sim_.RunUntil(SimTime(20.0));
  // Move the survivors to a newer version so the dead machine's version-0
  // work has no live host.
  for (int i = 2; i < kReplicas; ++i) {
    ptrs_[i]->ExtractAllWork();
    ptrs_[i]->SetWeightVersion(1);
  }
  int64_t in_flight_on_machine0 = ptrs_[0]->num_reqs() + ptrs_[1]->num_reqs();
  EXPECT_GT(in_flight_on_machine0, 0);
  manager.OnMachineFailure(0);
  // No same-version host: work waits for the replacement.
  EXPECT_EQ(manager.stats().trajectories_redirected, 0);
  // The replacement replicas load the old checkpointed version and adopt it,
  // keeping every trajectory single-version.
  sim_.RunUntilTrue(
      [&] { return manager.stats().trajectories_redirected > 0; }, 5000000);
  EXPECT_GT(manager.stats().trajectories_redirected, 0);
  bool adopted = ptrs_[0]->weight_version() == 0 || ptrs_[1]->weight_version() == 0;
  EXPECT_TRUE(adopted);
}

TEST_F(ManagerTest, InflightCountsEverything) {
  RolloutManager manager = MakeManager({});
  WireCompletions(&manager);
  manager.Start();
  EXPECT_EQ(manager.inflight_trajectories(), kReplicas * 64);
}

// Serving deadline boundary (ISSUE 9 satellite): every request is in exactly
// one of the six terminal/live classes, and the expiry boundary is pinned to
// deadline STRICTLY LESS than the sweep timestamp.
void ExpectServingConservation(const ServingStats& s) {
  EXPECT_EQ(s.requests, s.rejected + s.queued_now + s.resident_now + s.completed +
                            s.timed_out + s.failed)
      << "serving conservation broken: requests=" << s.requests
      << " rejected=" << s.rejected << " queued=" << s.queued_now
      << " resident=" << s.resident_now << " completed=" << s.completed
      << " timed_out=" << s.timed_out << " failed=" << s.failed;
}

// A request that survives admission (queued, not load-shed) must never later
// be counted `rejected`: once queued its only terminal classes are completed,
// timed_out or failed. Before the fix, a queued request retried at a sweep
// whose timestamp exactly equals its deadline went back through the admission
// feasibility gate (now + est > deadline, always true at the boundary) and
// was terminally rejected iff a host happened to be eligible — the terminal
// class depended on host availability at the sweep instant.
TEST_F(ManagerTest, ServingDeadlineOnSweepBoundaryIsNotLoadShed) {
  RolloutManagerConfig cfg;
  cfg.serving_enabled = true;
  cfg.serving_dedicated_replicas = 1;  // replica 0 is the only serving host
  RolloutManager manager = MakeManager(cfg);
  WireCompletions(&manager);
  ptrs_[0]->set_on_complete([&manager, this](TrajectoryRecord rec) {
    if (IsServingId(rec.id)) {
      manager.OnServingComplete(rec);
      return;
    }
    partial_pool_.Remove(rec.id);
    buffer_.Push(std::move(rec));
  });
  manager.Start();
  // Freeze machine 0 so the dedicated host is ineligible at arrival: the
  // request must enter the retry backlog, i.e. it has survived admission.
  manager.OnMachineStall(0, /*duration_seconds=*/0.7);
  ServingRequest req;
  req.seq = 0;
  req.prompt_tokens = 64;
  req.decode_tokens = 16;
  req.deadline_seconds = 1.0;  // exactly the 2nd sweep (period 0.5, armed at 0)
  manager.OnServingArrival(req);
  EXPECT_EQ(manager.serving_stats().queued_now, 1);
  ExpectServingConservation(manager.serving_stats());
  // Thaw at 0.7; at the sweep at t == 1.0 == deadline the host is eligible
  // again. deadline is NOT strictly less than the sweep timestamp, so the
  // request must be placed (resident), not shed and not timed out.
  sim_.RunUntil(SimTime(1.0));
  ServingStats at_boundary = manager.serving_stats();
  EXPECT_EQ(at_boundary.rejected, 0)
      << "queued request was load-shed at the deadline==sweep boundary";
  EXPECT_EQ(at_boundary.timed_out, 0);
  ExpectServingConservation(at_boundary);
  // The placed request runs to completion (a deadline miss, but conserved).
  sim_.RunUntil(SimTime(30.0));
  ServingStats done = manager.serving_stats();
  EXPECT_EQ(done.rejected, 0);
  EXPECT_EQ(done.timed_out, 0);
  EXPECT_EQ(done.completed, 1);
  EXPECT_EQ(done.deadline_misses, 1);
  ExpectServingConservation(done);
}

// The other side of the pin: with no eligible host, a request whose deadline
// exactly equals a sweep timestamp stays queued through that sweep (equality
// is not expiry) and times out at the first sweep strictly past it.
TEST_F(ManagerTest, ServingDeadlineExactlyAtSweepTimesOutOnlyStrictlyAfter) {
  RolloutManagerConfig cfg;
  cfg.serving_enabled = true;
  cfg.serving_dedicated_replicas = 1;
  RolloutManager manager = MakeManager(cfg);
  WireCompletions(&manager);
  manager.Start();
  manager.OnMachineStall(0, /*duration_seconds=*/10.0);  // host never eligible
  ServingRequest req;
  req.seq = 0;
  req.prompt_tokens = 64;
  req.decode_tokens = 16;
  req.deadline_seconds = 1.0;
  manager.OnServingArrival(req);
  sim_.RunUntil(SimTime(1.2));  // past the t == 1.0 == deadline sweep
  ServingStats at_boundary = manager.serving_stats();
  EXPECT_EQ(at_boundary.timed_out, 0) << "deadline == sweep timestamp is not expiry";
  EXPECT_EQ(at_boundary.queued_now, 1);
  EXPECT_EQ(at_boundary.rejected, 0);
  ExpectServingConservation(at_boundary);
  sim_.RunUntil(SimTime(1.6));  // the t == 1.5 sweep is strictly past the deadline
  ServingStats expired = manager.serving_stats();
  EXPECT_EQ(expired.timed_out, 1);
  EXPECT_EQ(expired.queued_now, 0);
  EXPECT_EQ(expired.rejected, 0);
  ExpectServingConservation(expired);
}

}  // namespace
}  // namespace laminar
