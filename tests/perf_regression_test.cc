// Corpus-wide byte-identity regression (labelled `perf` in CTest).
//
// Replays every committed .scenario repro through the full simulation batch
// and formats the per-config run fingerprints exactly the way
// `laminar_fuzz --fingerprints` does, then diffs against the checked-in
// golden. Any data-path "optimization" that changes even one output bit
// shows up here as a fingerprint mismatch before it ever reaches a benchmark
// comparison. Regenerate the golden (only for an intended behavior change)
// with:
//   build/bench/laminar_fuzz --fingerprints tests/corpus > tests/corpus/fingerprints.golden
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/verify/fuzzer.h"

namespace laminar {
namespace {

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::vector<std::string> ComputeFingerprintLines() {
  std::vector<std::string> lines;
  for (const std::string& path : ListCorpus(LAMINAR_FUZZ_CORPUS_DIR)) {
    Scenario scn;
    std::string error;
    EXPECT_TRUE(LoadScenarioFile(path, &scn, &error)) << path << ": " << error;
    for (const ConfigFingerprint& fp : ScenarioFingerprints(scn)) {
      char line[256];
      std::snprintf(line, sizeof(line), "%s %s %016llx", Basename(path).c_str(),
                    fp.label.c_str(), static_cast<unsigned long long>(fp.hash));
      lines.push_back(line);
    }
  }
  return lines;
}

std::vector<std::string> LoadGoldenLines() {
  std::ifstream in(LAMINAR_FUZZ_GOLDEN_FILE);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << LAMINAR_FUZZ_GOLDEN_FILE;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(PerfRegressionTest, CorpusFingerprintsMatchGolden) {
  std::vector<std::string> got = ComputeFingerprintLines();
  std::vector<std::string> want = LoadGoldenLines();
  ASSERT_FALSE(want.empty());
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.size(), want.size());
  size_t n = std::min(got.size(), want.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], want[i]) << "fingerprint line " << i << " diverged";
  }
}

TEST(PerfRegressionTest, FingerprintsStableAcrossSweepThreadCounts) {
  // The batched sweep must not let thread count leak into results: spot-check
  // the first corpus scenario across 1 and 4 sweep threads.
  std::vector<std::string> files = ListCorpus(LAMINAR_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(files.empty());
  Scenario scn;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(files[0], &scn, &error)) << error;
  std::vector<ConfigFingerprint> serial = ScenarioFingerprints(scn, 1);
  std::vector<ConfigFingerprint> pooled = ScenarioFingerprints(scn, 4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, pooled[i].label);
    EXPECT_EQ(serial[i].hash, pooled[i].hash);
  }
}

TEST(PerfRegressionTest, CorpusFingerprintsMatchGoldenUnderSharding) {
  // The sharded engine must hit the exact same golden hashes as serial:
  // replay every corpus scenario with shards=4 and diff against the same
  // checked-in file the serial gate uses.
  for (const std::string& path : ListCorpus(LAMINAR_FUZZ_CORPUS_DIR)) {
    Scenario scn;
    std::string error;
    ASSERT_TRUE(LoadScenarioFile(path, &scn, &error)) << path << ": " << error;
    std::vector<ConfigFingerprint> serial = ScenarioFingerprints(scn);
    scn.config.shards = 4;
    std::vector<ConfigFingerprint> sharded = ScenarioFingerprints(scn);
    ASSERT_EQ(serial.size(), sharded.size()) << path;
    // Twins derived from the primary inherit its shard count; hashes for
    // every batch entry must be unchanged.
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].hash, sharded[i].hash)
          << Basename(path) << " " << serial[i].label << " batch entry " << i;
    }
  }
}

}  // namespace
}  // namespace laminar
