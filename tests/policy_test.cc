#include <gtest/gtest.h>

#include "src/policy/policy.h"

namespace laminar {
namespace {

// Builds a scored GRPO group of `group` trajectories at the given
// generation/consume versions, outcomes sampled under `gen_version`. With
// `mixed`, a random subset of each group continued under later versions
// (partial rollout), so groups are internally version-inconsistent — as in
// real interrupted generation.
std::vector<TrajectoryRecord> MakeBatch(Policy& policy, Rng& rng, int prompts, int group,
                                        int gen_version, int finish_version,
                                        bool mixed = false) {
  std::vector<TrajectoryRecord> out;
  static int64_t next_prompt = 0;
  for (int p = 0; p < prompts; ++p) {
    int64_t pid = next_prompt++;
    double difficulty = rng.Uniform();
    for (int g = 0; g < group; ++g) {
      TrajectoryRecord rec;
      rec.id = pid * 100 + g;
      rec.prompt_id = pid;
      rec.group_index = g;
      rec.difficulty = difficulty;
      rec.weight_versions = {gen_version};
      if (mixed && rng.Bernoulli(0.6)) {
        for (int v = gen_version + 1; v <= finish_version; ++v) {
          if (rng.Bernoulli(0.7)) {
            rec.weight_versions.push_back(v);
          }
        }
      }
      rec.finish_actor_version = finish_version;
      policy.ScoreTrajectory(rec, rng);
      out.push_back(rec);
    }
  }
  return out;
}

// Runs `iters` on-policy-with-staleness training iterations; returns final
// expected reward.
double TrainLoop(int iters, int staleness, RlAlgorithm algorithm, bool mixed,
                 uint64_t seed) {
  Policy policy{PolicyConfig{}};
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    int current = policy.latest_version();
    int gen_version = std::max(0, current - staleness);
    auto batch = MakeBatch(policy, rng, /*prompts=*/48, /*group=*/16, gen_version, current,
                           mixed);
    // Four mini-batches, as the convergence config does.
    size_t mb = batch.size() / 4;
    for (int m = 0; m < 4; ++m) {
      std::vector<TrajectoryRecord> chunk(batch.begin() + m * mb,
                                          batch.begin() + (m + 1) * mb);
      policy.UpdateMinibatch(chunk, algorithm);
    }
    policy.PublishVersion();
  }
  return policy.EvalExpectedReward();
}

TEST(PolicyTest, InitialRewardIsLow) {
  Policy policy{PolicyConfig{}};
  EXPECT_LT(policy.EvalExpectedReward(), 0.2);
  EXPECT_GT(policy.EvalExpectedReward(), 0.0);
}

TEST(PolicyTest, OnPolicyTrainingImprovesReward) {
  double before = Policy{PolicyConfig{}}.EvalExpectedReward();
  double after = TrainLoop(40, /*staleness=*/0, RlAlgorithm::kGrpo, false, 1);
  EXPECT_GT(after, before + 0.2);
}

TEST(PolicyTest, StalenessSlowsLearning) {
  double fresh = TrainLoop(30, 0, RlAlgorithm::kGrpo, false, 2);
  double stale = TrainLoop(30, 8, RlAlgorithm::kGrpo, false, 2);
  EXPECT_GT(fresh, stale);
}

TEST(PolicyTest, StalenessHarmIsMonotone) {
  // The Laminar regime (staleness <= 4) loses much less than deep staleness.
  double fresh = 0.0;
  double mild = 0.0;
  double deep = 0.0;
  for (uint64_t seed : {3u, 13u, 23u}) {
    fresh += TrainLoop(30, 0, RlAlgorithm::kGrpo, false, seed);
    mild += TrainLoop(30, 2, RlAlgorithm::kGrpo, false, seed);
    deep += TrainLoop(30, 10, RlAlgorithm::kGrpo, false, seed);
  }
  EXPECT_GT(mild, fresh * 0.6);
  EXPECT_GT(mild, deep);
  EXPECT_GT(fresh, deep * 1.1);
}

TEST(PolicyTest, MixedVersionTrajectoriesHurtGrpo) {
  // Partial rollout's within-group version inconsistency degrades GRPO
  // relative to clean single-version groups at the same staleness.
  double clean = 0.0;
  double mixed = 0.0;
  for (uint64_t seed : {4u, 14u, 24u, 34u}) {
    clean += TrainLoop(30, 3, RlAlgorithm::kGrpo, false, seed);
    mixed += TrainLoop(30, 3, RlAlgorithm::kGrpo, true, seed);
  }
  EXPECT_GT(clean, mixed * 0.99);
}

TEST(PolicyTest, DecoupledPpoMitigatesMixedVersions) {
  double naive = TrainLoop(30, 4, RlAlgorithm::kGrpo, true, 5);
  double decoupled = TrainLoop(30, 4, RlAlgorithm::kDecoupledPpo, true, 5);
  EXPECT_GT(decoupled, naive * 0.95);
}

TEST(PolicyTest, UniformGroupsCarryNoSignal) {
  Policy policy{PolicyConfig{}};
  std::vector<TrajectoryRecord> batch;
  for (int g = 0; g < 16; ++g) {
    TrajectoryRecord rec;
    rec.prompt_id = 1;
    rec.difficulty = 0.5;
    rec.weight_versions = {0};
    rec.reward = 1.0;  // everyone succeeded: advantage must be zero
    rec.success = true;
    rec.behavior_prob = 0.5;
    batch.push_back(rec);
  }
  auto before = policy.parameters();
  UpdateStats stats = policy.UpdateMinibatch(batch, RlAlgorithm::kGrpo);
  EXPECT_DOUBLE_EQ(stats.grad_norm, 0.0);
  EXPECT_EQ(policy.parameters(), before);
}

TEST(PolicyTest, ClipFractionGrowsWithStaleness) {
  Policy fresh_policy{PolicyConfig{}};
  Rng rng(6);
  // Train a while so versions genuinely differ.
  for (int i = 0; i < 20; ++i) {
    auto batch = MakeBatch(fresh_policy, rng, 32, 16, fresh_policy.latest_version(),
                           fresh_policy.latest_version());
    fresh_policy.UpdateMinibatch(batch, RlAlgorithm::kGrpo);
    fresh_policy.PublishVersion();
  }
  int v = fresh_policy.latest_version();
  auto on_policy = MakeBatch(fresh_policy, rng, 64, 16, v, v);
  auto off_policy = MakeBatch(fresh_policy, rng, 64, 16, std::max(0, v - 10), v);
  UpdateStats on = fresh_policy.UpdateMinibatch(on_policy, RlAlgorithm::kGrpo);
  UpdateStats off = fresh_policy.UpdateMinibatch(off_policy, RlAlgorithm::kGrpo);
  EXPECT_GE(off.clip_fraction, on.clip_fraction);
  EXPECT_GT(off.mean_abs_log_ratio, on.mean_abs_log_ratio);
}

TEST(PolicyTest, SuccessProbMonotoneInDifficulty) {
  Policy policy{PolicyConfig{}};
  double easy = policy.CurrentSuccessProb(0.1);
  double hard = policy.CurrentSuccessProb(0.9);
  EXPECT_GT(easy, hard);
}

TEST(PolicyTest, VersionSnapshotsAreStable) {
  Policy policy{PolicyConfig{}};
  Rng rng(7);
  double p0 = policy.SuccessProb(0, 0.5);
  for (int i = 0; i < 10; ++i) {
    auto batch = MakeBatch(policy, rng, 16, 16, policy.latest_version(),
                           policy.latest_version());
    policy.UpdateMinibatch(batch, RlAlgorithm::kGrpo);
    policy.PublishVersion();
  }
  // Old snapshots are immutable.
  EXPECT_DOUBLE_EQ(policy.SuccessProb(0, 0.5), p0);
  EXPECT_NE(policy.SuccessProb(10, 0.5), p0);
}

TEST(PolicyTest, RestoreVersionRollsBack) {
  Policy policy{PolicyConfig{}};
  Rng rng(8);
  auto batch = MakeBatch(policy, rng, 32, 16, 0, 0);
  policy.UpdateMinibatch(batch, RlAlgorithm::kGrpo);
  EXPECT_NE(policy.parameters(), std::vector<double>(12, 0.0));
  policy.RestoreVersion(0);
  EXPECT_EQ(policy.parameters(), std::vector<double>(12, 0.0));
}

TEST(PolicyTest, ScoreTrajectoryFillsAllFields) {
  Policy policy{PolicyConfig{}};
  Rng rng(9);
  TrajectoryRecord rec;
  rec.difficulty = 0.3;
  rec.weight_versions = {0};
  policy.ScoreTrajectory(rec, rng);
  EXPECT_TRUE(rec.reward == 0.0 || rec.reward == 1.0);
  EXPECT_GT(rec.behavior_prob, 0.0);
  EXPECT_LT(rec.behavior_prob, 1.0);
  EXPECT_EQ(rec.success, rec.reward == 1.0);
}

// Property sweep: learning must be robust across seeds.
class PolicyConvergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyConvergenceTest, ImprovesFromScratch) {
  double final_reward = TrainLoop(25, 0, RlAlgorithm::kGrpo, false, GetParam());
  EXPECT_GT(final_reward, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyConvergenceTest, ::testing::Range<uint64_t>(10, 18));

}  // namespace
}  // namespace laminar
