// Parameterized property tests over randomized inputs: conservation laws of
// the rollout engine, optimality/monotonicity of the broadcast model, decode
// cost-model sanity across the parameter space, and buffer conservation.
#include <gtest/gtest.h>

#include <set>

#include "src/cluster/hardware.h"
#include "src/core/run.h"
#include "src/data/experience_buffer.h"
#include "src/data/prompt_pool.h"
#include "src/llm/decode_model.h"
#include "src/llm/model_spec.h"
#include "src/relay/broadcast_model.h"
#include "src/rollout/replica.h"
#include "src/sim/simulator.h"

namespace laminar {
namespace {

// --- Rollout engine conservation -------------------------------------------

class ReplicaConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicaConservationTest, DecodedTokensMatchSpecsExactly) {
  Rng rng(GetParam());
  Simulator sim;
  WorkloadConfig wl;
  wl.task = rng.Bernoulli(0.5) ? TaskKind::kMathReasoning : TaskKind::kToolCalling;
  PromptPool pool(WorkloadGenerator(wl, rng.Fork("wl")), 16, rng.Fork("pp"));
  DecodeModel decode(Qwen25_7B(), MachineSpec{}, 1);
  ReplicaConfig rc;
  rc.max_concurrency = static_cast<int>(rng.UniformInt(16, 512));
  RolloutReplica replica(&sim, rc, decode, decode.KvCapacityTokens());

  int64_t expected_decode = 0;
  int64_t expected_context = 0;
  std::set<TrajId> expected_ids;
  std::vector<TrajectoryWork> works;
  int batch = static_cast<int>(rng.UniformInt(2, 20)) * 16;
  for (auto& rec : pool.NextBatch(batch, 0)) {
    expected_decode += rec.spec.total_decode_tokens();
    expected_context += rec.spec.total_context_tokens();
    expected_ids.insert(rec.id);
    TrajectoryWork w;
    w.record = rec;
    w.InitContext();
    works.push_back(w);
  }

  int64_t completed_context = 0;
  std::set<TrajId> completed_ids;
  replica.set_on_complete([&](TrajectoryRecord rec) {
    completed_ids.insert(rec.id);
    completed_context += rec.total_tokens();
    // Exactly one policy version: no partial rollout here.
    EXPECT_FALSE(rec.mixed_version());
  });
  replica.AssignWork(std::move(works));
  sim.RunUntilIdle();

  // Every trajectory completed exactly once; tokens conserved exactly.
  EXPECT_EQ(completed_ids, expected_ids);
  EXPECT_EQ(replica.metrics().decode_tokens, expected_decode);
  EXPECT_EQ(completed_context, expected_context);
  EXPECT_NEAR(replica.kv_used_tokens(), 0.0, 1e-6);
  EXPECT_EQ(replica.num_reqs(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaConservationTest, ::testing::Range<uint64_t>(0, 12));

// Migration mid-flight must also conserve tokens.
class MigrationConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MigrationConservationTest, TokensSurviveRepeatedMigration) {
  Rng rng(GetParam() + 100);
  Simulator sim;
  WorkloadConfig wl;
  PromptPool pool(WorkloadGenerator(wl, rng.Fork("wl")), 16, rng.Fork("pp"));
  DecodeModel decode(Qwen25_7B(), MachineSpec{}, 1);
  ReplicaConfig rc;
  RolloutReplica a(&sim, rc, decode, decode.KvCapacityTokens());
  rc.id = 1;  // distinct continuation-registry instance
  RolloutReplica b(&sim, rc, decode, decode.KvCapacityTokens());

  int64_t expected_decode = 0;
  std::vector<TrajectoryWork> works;
  for (auto& rec : pool.NextBatch(64, 0)) {
    expected_decode += rec.spec.total_decode_tokens();
    TrajectoryWork w;
    w.record = rec;
    w.InitContext();
    works.push_back(w);
  }
  int completed = 0;
  auto on_complete = [&](TrajectoryRecord) { ++completed; };
  a.set_on_complete(on_complete);
  b.set_on_complete(on_complete);
  a.AssignWork(std::move(works));

  // Bounce the in-flight work between the replicas a few times.
  RolloutReplica* replicas[2] = {&a, &b};
  for (int hop = 0; hop < 4; ++hop) {
    sim.RunUntil(sim.Now() + rng.Uniform(3.0, 20.0));
    auto moved = replicas[hop % 2]->ExtractAllWork();
    if (!moved.empty()) {
      replicas[(hop + 1) % 2]->AssignWork(std::move(moved),
                                          /*kv_transferred=*/rng.Bernoulli(0.5));
    }
  }
  sim.RunUntilIdle();
  EXPECT_EQ(completed, 64);
  EXPECT_EQ(a.metrics().decode_tokens + b.metrics().decode_tokens, expected_decode);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationConservationTest,
                         ::testing::Range<uint64_t>(0, 8));

// --- Broadcast model properties ---------------------------------------------

struct BroadcastCase {
  double mbytes;
  double bandwidth;
  double startup;
  int nodes;
};

class BroadcastPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BroadcastPropertyTest, OptimalChunkBeatsNeighboursAndScalesGently) {
  Rng rng(GetParam());
  BroadcastParams p;
  p.message_bytes = rng.Uniform(1e8, 3e11);
  p.byte_time = 1.0 / rng.Uniform(1e9, 4e11);
  p.startup_time = rng.Uniform(1e-6, 1e-3);
  int nodes = static_cast<int>(rng.UniformInt(2, 2048));

  int k = OptimalChunkCount(p, nodes);
  double best = BroadcastTime(p, nodes, k);
  // No sampled k beats the optimum.
  for (int i = 0; i < 20; ++i) {
    int other = static_cast<int>(rng.UniformInt(1, 4 * k + 8));
    EXPECT_LE(best, BroadcastTime(p, nodes, other) + 1e-12);
  }
  // Bandwidth term is a lower bound; pipelining keeps total near it.
  double bandwidth_term = p.message_bytes * p.byte_time;
  EXPECT_GE(best, bandwidth_term);
  BroadcastTerms terms = DecomposeOptimalTime(p, nodes);
  EXPECT_LE(best, terms.total() * 1.05 + 1e-9);
  // Arrival times are monotone along the chain.
  EXPECT_LE(ArrivalTime(p, 1, k), ArrivalTime(p, nodes - 1 > 0 ? nodes - 1 : 1, k) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastPropertyTest, ::testing::Range<uint64_t>(0, 30));

// --- Decode cost model properties --------------------------------------------

class DecodePropertyTest
    : public ::testing::TestWithParam<std::tuple<ModelScale, int>> {};

TEST_P(DecodePropertyTest, CostModelSanity) {
  auto [scale, tp] = GetParam();
  ModelSpec model = ModelForScale(scale);
  if (model.weight_bytes() / tp > 70e9) {
    GTEST_SKIP() << "model does not fit at this TP";
  }
  DecodeModel m(model, MachineSpec{}, tp);
  double prev_per_token = 1e9;
  for (int batch : {1, 4, 16, 64, 256}) {
    double lat = m.StepLatency(batch, 2500.0);
    EXPECT_GT(lat, 0.0);
    // Longer contexts never decode faster.
    EXPECT_GE(m.StepLatency(batch, 8000.0), lat);
    // Per-token efficiency improves with batch in the memory-bound regime.
    double per_token = lat / batch;
    EXPECT_LT(per_token, prev_per_token);
    prev_per_token = per_token;
  }
  // More TP never hurts step latency at fixed batch (comm grows slower than
  // the shard shrinks in this regime).
  if (tp > 1) {
    DecodeModel single(model, MachineSpec{}, 1);
    if (model.weight_bytes() <= 70e9) {
      EXPECT_LT(m.StepLatency(8, 2500.0), single.StepLatency(8, 2500.0));
    }
  }
  EXPECT_GT(m.KvCapacityTokens(), 0.0);
  EXPECT_GT(m.RooflineBatchBound(2500.0), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecodePropertyTest,
    ::testing::Combine(::testing::Values(ModelScale::k7B, ModelScale::k32B,
                                         ModelScale::k72B),
                       ::testing::Values(1, 2, 4, 8)));

// --- Experience buffer conservation ------------------------------------------

class BufferPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferPropertyTest, RandomPushSampleConservesRecords) {
  Rng rng(GetParam());
  std::unique_ptr<SamplerPolicy> sampler;
  switch (rng.UniformInt(0, 2)) {
    case 0:
      sampler = MakeFifoSampler();
      break;
    case 1:
      sampler = MakeFreshnessSampler();
      break;
    default:
      sampler = MakeStalenessCappedSampler(static_cast<int>(rng.UniformInt(0, 5)));
  }
  ExperienceBuffer buffer(std::move(sampler));
  std::set<TrajId> outstanding;
  std::set<TrajId> seen;
  TrajId next = 0;
  int version = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.Bernoulli(0.6)) {
      TrajectoryRecord rec;
      rec.id = next++;
      rec.weight_versions = {static_cast<int>(rng.UniformInt(0, version))};
      rec.spec.AppendSegment({10, 0.0, 0});
      outstanding.insert(rec.id);
      buffer.Push(std::move(rec));
    } else {
      size_t n = static_cast<size_t>(rng.UniformInt(0, 8));
      if (buffer.CanSample(n) && n > 0) {
        for (auto& rec : buffer.Sample(n, version)) {
          // Never sampled twice, always previously pushed.
          EXPECT_TRUE(seen.insert(rec.id).second);
          EXPECT_EQ(outstanding.erase(rec.id), 1u);
          EXPECT_EQ(rec.consume_actor_version, version);
        }
      }
      if (rng.Bernoulli(0.3)) {
        ++version;
      }
    }
  }
  EXPECT_EQ(buffer.size(), outstanding.size());
  EXPECT_EQ(buffer.total_pushed(), static_cast<int64_t>(seen.size() + outstanding.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPropertyTest, ::testing::Range<uint64_t>(0, 15));

// --- Metamorphic hardware-speed scaling --------------------------------------

// Multiplying every hardware rate (GPU FLOPs, HBM, link bandwidths) by k and
// every fixed latency/period by 1/k must compress the run's time axis by
// exactly 1/k and change nothing else: same events in the same causal order,
// every timestamp and span duration scaled, k-times the throughput. Power-of-
// two k makes the IEEE-double scaling exact, so the comparisons are exact
// equality, not tolerances. Verified against the full captured trace: this
// covers every subsystem that emits events, not just the headline metric.
class HardwareSpeedTest : public ::testing::TestWithParam<double> {};

TEST_P(HardwareSpeedTest, CompressesTheTimeAxisExactly) {
  const double k = GetParam();
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.max_concurrency = 256;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 3;
  cfg.seed = 1234;
  cfg.trace.enabled = true;
  SystemReport base = RunExperiment(cfg);
  cfg.hardware_speed = k;
  SystemReport fast = RunExperiment(cfg);
  ASSERT_NE(base.trace, nullptr);
  ASSERT_NE(fast.trace, nullptr);

  std::vector<TraceEvent> a = base.trace->InOrder();
  std::vector<TraceEvent> b = fast.trace->InOrder();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Ordering invariant: the i-th emitted event is the same logical event...
    ASSERT_EQ(base.trace->name(a[i].name), fast.trace->name(b[i].name)) << "event " << i;
    ASSERT_EQ(a[i].component, b[i].component) << "event " << i;
    ASSERT_EQ(a[i].kind, b[i].kind) << "event " << i;
    ASSERT_EQ(a[i].entity, b[i].entity) << "event " << i;
    ASSERT_EQ(a[i].arg, b[i].arg) << "event " << i;
    // ...with its timestamp and duration scaled by exactly 1/k.
    ASSERT_DOUBLE_EQ(a[i].time / k, b[i].time) << "event " << i;
    ASSERT_DOUBLE_EQ(a[i].duration / k, b[i].duration) << "event " << i;
  }
  EXPECT_DOUBLE_EQ(base.simulated_seconds / k, fast.simulated_seconds);
  EXPECT_DOUBLE_EQ(base.throughput_tokens_per_sec * k, fast.throughput_tokens_per_sec);
  // Token counts are workload properties and must never scale.
  EXPECT_EQ(base.total_decode_tokens, fast.total_decode_tokens);
  EXPECT_EQ(base.iterations_completed, fast.iterations_completed);
}

INSTANTIATE_TEST_SUITE_P(Factors, HardwareSpeedTest, ::testing::Values(2.0, 4.0));

}  // namespace
}  // namespace laminar
