#include <gtest/gtest.h>

#include <cmath>

#include "src/relay/broadcast_model.h"
#include "src/relay/relay_tier.h"
#include "src/relay/weight_sync.h"

namespace laminar {
namespace {

BroadcastParams Params(double mbytes = 65.6e9, double bw = 50e9, double startup = 5e-6) {
  BroadcastParams p;
  p.message_bytes = mbytes;
  p.byte_time = 1.0 / bw;
  p.startup_time = startup;
  return p;
}

TEST(BroadcastModelTest, FormulaMatchesAppendixD) {
  BroadcastParams p = Params(1e9, 1e9, 1e-3);
  // T(p,k) = (p + k - 2) * (M/k * T_byte + T_start)
  double t = BroadcastTime(p, /*nodes=*/10, /*chunks=*/4);
  double t_chunk = 1e9 / 4.0 / 1e9 + 1e-3;
  EXPECT_DOUBLE_EQ(t, 12.0 * t_chunk);
  EXPECT_DOUBLE_EQ(ChunkTime(p, 4), t_chunk);
}

TEST(BroadcastModelTest, SingleNodeIsFree) {
  EXPECT_DOUBLE_EQ(BroadcastTime(Params(), 1, 8), 0.0);
}

TEST(BroadcastModelTest, OptimalChunkCountNearAnalytic) {
  BroadcastParams p = Params(1e9, 1e9, 1e-4);
  int nodes = 66;
  int k = OptimalChunkCount(p, nodes);
  double analytic = std::sqrt((nodes - 2) * p.message_bytes * p.byte_time / p.startup_time);
  EXPECT_NEAR(k, analytic, 2.0);
  // No neighbouring integer does better.
  double best = BroadcastTime(p, nodes, k);
  EXPECT_LE(best, BroadcastTime(p, nodes, k - 1));
  EXPECT_LE(best, BroadcastTime(p, nodes, k + 1));
}

TEST(BroadcastModelTest, NearlyConstantInChainLength) {
  // Appendix D's conclusion: the bandwidth term dominates, so the time is
  // largely insensitive to the number of relays.
  BroadcastParams p = Params();  // 72B-class weights over RDMA
  double t2 = OptimalBroadcastTime(p, 2);
  double t128 = OptimalBroadcastTime(p, 128);
  EXPECT_LT(t128 / t2, 1.25);
  // And the paper's headline: < 1.6 s for 72B weights to 127 relays...
  BroadcastParams big = Params(145.4e9);
  EXPECT_LT(OptimalBroadcastTime(big, 128), 3.2);
}

TEST(BroadcastModelTest, DecompositionSumsToOptimal) {
  BroadcastParams p = Params();
  BroadcastTerms terms = DecomposeOptimalTime(p, 100);
  EXPECT_GT(terms.bandwidth_term, terms.latency_term);
  EXPECT_GT(terms.bandwidth_term, terms.pipeline_term);
  // T* = bandwidth + latency + pipeline (exact at the continuous optimum).
  EXPECT_NEAR(terms.total(), OptimalBroadcastTime(p, 100),
              0.02 * OptimalBroadcastTime(p, 100));
}

TEST(BroadcastModelTest, ArrivalTimesIncreaseAlongChain) {
  BroadcastParams p = Params();
  int k = OptimalChunkCount(p, 16);
  double prev = 0.0;
  for (int pos = 1; pos < 16; ++pos) {
    double at = ArrivalTime(p, pos, k);
    EXPECT_GT(at, prev);
    prev = at;
  }
}

// PullLatest completions are delivered through the continuation registry
// (PullTicket); this probe stands in for the rollout manager in tests.
class PullProbe : public ContinuationClient {
 public:
  PullProbe(Simulator* sim, int32_t comp) : sim_(sim), comp_(comp) {
    sim_->continuations().Register(comp_, this);
  }
  ~PullProbe() override { sim_->continuations().Unregister(comp_); }

  PullTicket Ticket() const { return PullTicket{comp_, 0, 0, 0}; }

  void RunContinuation(uint16_t /*kind*/, const ContinuationPayload& p) override {
    ++calls;
    got = static_cast<int>(p.c);
    wait = ContinuationPayload::ToF64(p.d);
  }
  void RestoreContinuation(uint16_t /*kind*/, const ContinuationPayload& /*p*/,
                           SimTime /*at*/) override {}

  int calls = 0;
  int got = -1;
  double wait = -1.0;

 private:
  Simulator* sim_;
  int32_t comp_;
};

class RelayTierTest : public ::testing::Test {
 protected:
  RelayTierConfig Config(int relays = 8) {
    RelayTierConfig c;
    c.num_relays = relays;
    c.weight_bytes = 65.6e9;
    return c;
  }
  Simulator sim_;
  PullProbe probe_{&sim_, ContinuationComponentId(kContFamilyManager, 77)};
};

TEST_F(RelayTierTest, PublishPropagatesToAllRelays) {
  RelayTier tier(&sim_, Config());
  double stall = tier.Publish(1);
  EXPECT_GT(stall, 0.0);
  EXPECT_LT(stall, 2.0);  // §8.3: sub-second-ish actor stall
  sim_.RunUntilIdle();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tier.VersionAt(i), 1);
  }
  EXPECT_EQ(tier.broadcast_seconds().count(), 1u);
}

TEST_F(RelayTierTest, PullAfterArrivalOnlyPaysPcieLoad) {
  RelayTier tier(&sim_, Config());
  tier.Publish(1);
  sim_.RunUntilIdle();
  tier.PullLatest(5, /*tp=*/4, /*current=*/0, probe_.Ticket());
  sim_.RunUntilIdle();
  EXPECT_EQ(probe_.got, 1);
  EXPECT_NEAR(probe_.wait, tier.PullLoadSeconds(4), 1e-9);
}

TEST_F(RelayTierTest, PullBeforeArrivalWaitsForBroadcast) {
  RelayTier tier(&sim_, Config());
  tier.Publish(1);
  tier.PullLatest(7, 4, 0, probe_.Ticket());
  sim_.RunUntilIdle();
  // Wait includes push + reshard + chain propagation + PCIe load.
  EXPECT_GT(probe_.wait, tier.PullLoadSeconds(4));
}

TEST_F(RelayTierTest, NoNewerVersionIsNoOp) {
  RelayTier tier(&sim_, Config());
  tier.PullLatest(0, 4, /*current=*/0, probe_.Ticket());
  EXPECT_EQ(probe_.calls, 1);  // immediate
  EXPECT_EQ(probe_.got, 0);
  EXPECT_DOUBLE_EQ(probe_.wait, 0.0);
}

TEST_F(RelayTierTest, KilledRelayDropsAndReviveResyncs) {
  RelayTier tier(&sim_, Config());
  tier.Publish(1);
  sim_.RunUntilIdle();
  tier.KillRelay(3);
  EXPECT_FALSE(tier.IsAlive(3));
  EXPECT_EQ(tier.VersionAt(3), -1);
  tier.ReviveRelay(3);
  sim_.RunUntilIdle();
  EXPECT_TRUE(tier.IsAlive(3));
  EXPECT_EQ(tier.VersionAt(3), 1);  // synced from master
  EXPECT_EQ(tier.chain_rebuilds(), 1);
}

TEST_F(RelayTierTest, FailureMidBroadcastDelaysButDelivers) {
  RelayTier tier(&sim_, Config(16));
  tier.Publish(1);
  // Kill a relay while the broadcast is still in flight.
  sim_.RunUntil(SimTime(0.4));
  tier.KillRelay(2);
  sim_.RunUntilIdle();
  for (int i = 0; i < 16; ++i) {
    if (i == 2) {
      continue;
    }
    EXPECT_EQ(tier.VersionAt(i), 1) << "relay " << i;
  }
}

TEST_F(RelayTierTest, MasterFailureElectsNewMaster) {
  RelayTier tier(&sim_, Config());
  tier.Publish(1);
  sim_.RunUntilIdle();
  int old_master = tier.master();
  tier.KillRelay(old_master);
  EXPECT_NE(tier.master(), old_master);
  EXPECT_EQ(tier.master_elections(), 1);
  // Publishing still works through the new master.
  tier.Publish(2);
  sim_.RunUntilIdle();
  for (int i = 0; i < 8; ++i) {
    if (i == old_master) {
      continue;
    }
    EXPECT_EQ(tier.VersionAt(i), 2);
  }
}

TEST_F(RelayTierTest, WaiterOnDeadRelayServedAfterRevive) {
  RelayTier tier(&sim_, Config());
  tier.KillRelay(4);
  tier.Publish(1);
  tier.PullLatest(4, 2, 0, probe_.Ticket());
  sim_.RunUntilIdle();
  EXPECT_EQ(probe_.got, -1);  // relay dead: nothing delivered
  tier.ReviveRelay(4);
  sim_.RunUntilIdle();
  EXPECT_EQ(probe_.got, 1);
}

TEST_F(RelayTierTest, PullLoadScalesWithTensorParallel) {
  RelayTier tier(&sim_, Config());
  EXPECT_DOUBLE_EQ(tier.PullLoadSeconds(4), tier.PullLoadSeconds(1) / 4.0);
}

TEST(GlobalSyncModelTest, GrowsWithClusterSize) {
  GlobalSyncModel m;
  m.weight_bytes = 65.6e9;
  double small = m.SyncSeconds(8);
  double large = m.SyncSeconds(1024);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.3);
}

TEST(StorageSyncModelTest, SerializationDominates) {
  // §4.1: a 32B model takes tens of seconds through NFS/Redis, far worse
  // than the relay path.
  StorageSyncModel m;
  m.weight_bytes = 65.6e9;
  EXPECT_GT(m.PublishSeconds(), 60.0);
  EXPECT_GT(m.PullSeconds(), 60.0);
}

}  // namespace
}  // namespace laminar
