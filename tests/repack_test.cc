#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/repack/best_fit.h"
#include "src/repack/monitor.h"

namespace laminar {
namespace {

ReplicaSnapshot Snap(int id, double kv, int reqs, double prev = 1.0, int waiting = 0) {
  ReplicaSnapshot s;
  s.replica_id = id;
  s.weight_version = 0;
  s.kv_used_frac = kv;
  s.kv_prev_frac = prev;
  s.num_reqs = reqs;
  s.num_waiting = waiting;
  s.busy = reqs > 0;
  s.eligible = true;
  return s;
}

RepackParams Params(double c_max = 0.99, int bound = 100) {
  RepackParams p;
  p.c_max_frac = c_max;
  p.batch_bound = bound;
  return p;
}

TEST(BestFitTest, MergesTwoRampDownReplicas) {
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.10, 5, 0.5), Snap(1, 0.20, 10, 0.5)};
  RepackPlan plan = BestFitConsolidation(snaps, Params());
  ASSERT_EQ(plan.moves.size(), 1u);
  // The smaller footprint is released into the larger one (Best-Fit).
  EXPECT_EQ(plan.moves[0].first, 0);
  EXPECT_EQ(plan.moves[0].second, 1);
}

TEST(BestFitTest, RampUpReplicasAreNotCandidates) {
  // kv rose since the last tick well beyond the tolerance: still filling.
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.50, 5, 0.30), Snap(1, 0.20, 10, 0.10)};
  RepackPlan plan = BestFitConsolidation(snaps, Params());
  EXPECT_TRUE(plan.empty());
}

TEST(BestFitTest, WaitingQueueBlocksCandidacy) {
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.10, 5, 0.5, /*waiting=*/3),
                                        Snap(1, 0.20, 10, 0.5)};
  RepackPlan plan = BestFitConsolidation(snaps, Params());
  EXPECT_TRUE(plan.empty());  // replica 1 alone has no destination
}

TEST(BestFitTest, RespectsKvThreshold) {
  // Together they would exceed C_max.
  std::vector<ReplicaSnapshot> over = {Snap(0, 0.60, 5, 0.7), Snap(1, 0.50, 10, 0.6)};
  EXPECT_TRUE(BestFitConsolidation(over, Params(/*c_max=*/0.99)).empty());
  // A pair that fits under the threshold does merge.
  std::vector<ReplicaSnapshot> under = {Snap(0, 0.45, 5, 0.7), Snap(1, 0.50, 10, 0.6)};
  EXPECT_EQ(BestFitConsolidation(under, Params(/*c_max=*/0.99)).moves.size(), 1u);
}

TEST(BestFitTest, RespectsBatchBound) {
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.10, 60, 0.5), Snap(1, 0.10, 60, 0.5)};
  // Combined 120 > bound 100: no move.
  EXPECT_TRUE(BestFitConsolidation(snaps, Params(0.99, 100)).empty());
  // Bound 128 admits it.
  EXPECT_EQ(BestFitConsolidation(snaps, Params(0.99, 128)).moves.size(), 1u);
}

TEST(BestFitTest, ReplicaAtOrAboveBoundIsNotACandidate) {
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.10, 100, 0.5), Snap(1, 0.10, 5, 0.5)};
  // Replica 0 has reqs == bound: excluded entirely (neither source nor dest).
  RepackPlan plan = BestFitConsolidation(snaps, Params(0.99, 100));
  EXPECT_TRUE(plan.empty());
}

TEST(BestFitTest, PicksDensestValidDestination) {
  // Source 0 (smallest) can fit into 1 or 2; 2 is denser.
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.05, 5, 0.5), Snap(1, 0.30, 10, 0.5),
                                        Snap(2, 0.40, 10, 0.5)};
  RepackPlan plan = BestFitConsolidation(snaps, Params());
  ASSERT_GE(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].first, 0);
  EXPECT_EQ(plan.moves[0].second, 2);
}

TEST(BestFitTest, ReleasesSmallestFootprintsFirst) {
  // Destination has room for only one more source; the smaller one wins.
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.30, 40, 0.5), Snap(1, 0.10, 20, 0.5),
                                        Snap(2, 0.60, 50, 0.7)};
  RepackPlan plan = BestFitConsolidation(snaps, Params(0.99, 80));
  // Source 1 (0.10) goes first into 2; source 0 (0.30) can still fit by kv
  // (0.60+0.10+0.30 = 1.0 > 0.99? just over) -> only one move.
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].first, 1);
  EXPECT_EQ(plan.moves[0].second, 2);
}

TEST(BestFitTest, ChainsMultipleSourcesIntoOneDestination) {
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.05, 5, 0.3), Snap(1, 0.06, 5, 0.3),
                                        Snap(2, 0.07, 5, 0.3), Snap(3, 0.30, 20, 0.5)};
  RepackPlan plan = BestFitConsolidation(snaps, Params());
  EXPECT_EQ(plan.moves.size(), 3u);
  for (const auto& [src, dst] : plan.moves) {
    EXPECT_EQ(dst, 3);
  }
  EXPECT_EQ(plan.ReleasedSources().size(), 3u);
  EXPECT_EQ(plan.Destinations(), std::vector<int>{3});
}

TEST(BestFitTest, DestinationIsNeverLaterDrainedAsSource) {
  // Regression: the old matcher could plan A->D and then drain D into E using
  // only D's pre-move snapshot load, so E ended up with A+D+E combined —
  // overflowing both C_max and the batch bound. Algorithm 1 removes
  // destinations from the candidate set S; the plan must stop at A->D.
  //
  // Replica 2 cannot take 0 directly (50+60 requests > bound 100), so 0 lands
  // on 1; 1 then holds 0's requests and must not itself be drained onto 2.
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.10, 50, 0.5), Snap(1, 0.25, 10, 0.5),
                                        Snap(2, 0.50, 60, 0.7)};
  RepackPlan plan = BestFitConsolidation(snaps, Params(/*c_max=*/0.80, /*bound=*/100));
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].first, 0);
  EXPECT_EQ(plan.moves[0].second, 1);
  // Post-apply loads stay within bounds on every destination.
  EXPECT_LE(0.25 + 0.10, 0.80);
  EXPECT_LE(10 + 50, 100);
}

TEST(BestFitTest, EmptiedSourceCannotBeDestination) {
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.05, 5, 0.3), Snap(1, 0.06, 5, 0.3)};
  RepackPlan plan = BestFitConsolidation(snaps, Params());
  ASSERT_EQ(plan.moves.size(), 1u);
  // 0 moved into 1; 1 must not then be moved into 0.
  EXPECT_EQ(plan.moves[0].first, 0);
}

TEST(BestFitTest, IneligibleAndIdleReplicasIgnored) {
  ReplicaSnapshot dead = Snap(0, 0.05, 5, 0.3);
  dead.eligible = false;
  ReplicaSnapshot empty = Snap(1, 0.0, 0, 0.3);
  empty.busy = false;
  std::vector<ReplicaSnapshot> snaps = {dead, empty, Snap(2, 0.10, 5, 0.3)};
  EXPECT_TRUE(BestFitConsolidation(snaps, Params()).empty());
}

TEST(StaticThresholdTest, UsesRequestCountNotKvTrend) {
  // Both replicas are ramping UP (kv rising); the KVCache detector refuses,
  // but the static threshold (reqs < 8) fires anyway — the false-positive
  // mode the paper warns about.
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.50, 5, 0.1), Snap(1, 0.40, 6, 0.1)};
  EXPECT_TRUE(BestFitConsolidation(snaps, Params()).empty());
  RepackPlan plan = StaticThresholdConsolidation(snaps, Params(), /*threshold=*/8);
  EXPECT_EQ(plan.moves.size(), 1u);
}

TEST(IdlenessMonitorTest, TracksPreviousUtilization) {
  IdlenessMonitor monitor;
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.5, 5)};
  monitor.Observe(snaps);
  EXPECT_DOUBLE_EQ(snaps[0].kv_prev_frac, kNoPrevKvSample);  // first sight
  snaps[0].kv_used_frac = 0.4;
  monitor.Observe(snaps);
  EXPECT_DOUBLE_EQ(snaps[0].kv_prev_frac, 0.5);
  monitor.Forget(0);
  snaps[0].kv_used_frac = 0.3;
  monitor.Observe(snaps);
  EXPECT_DOUBLE_EQ(snaps[0].kv_prev_frac, kNoPrevKvSample);
}

TEST(IdlenessMonitorTest, FirstTickReplicasAreNotRepackEligible) {
  // Regression: the old first-sight sentinel (kv_prev_frac = 1.0) collapsed
  // the ramp-down test to kv < C_max, making brand-new replicas immediately
  // repack-eligible — the opposite of the documented intent. A first tick
  // must never produce a plan, however low the utilization.
  IdlenessMonitor monitor;
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.10, 5), Snap(1, 0.20, 10)};
  monitor.Observe(snaps);
  EXPECT_TRUE(BestFitConsolidation(snaps, Params()).empty());

  // Second tick with utilization genuinely falling: now they may merge.
  snaps[0].kv_used_frac = 0.08;
  snaps[1].kv_used_frac = 0.18;
  monitor.Observe(snaps);
  RepackPlan plan = BestFitConsolidation(snaps, Params());
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].first, 0);
  EXPECT_EQ(plan.moves[0].second, 1);
}

TEST(IdlenessMonitorTest, ForgottenReplicaIsNotEligibleOnRevival) {
  IdlenessMonitor monitor;
  std::vector<ReplicaSnapshot> snaps = {Snap(0, 0.30, 5), Snap(1, 0.20, 10)};
  monitor.Observe(snaps);
  snaps[0].kv_used_frac = 0.10;
  snaps[1].kv_used_frac = 0.18;
  monitor.Observe(snaps);
  ASSERT_FALSE(BestFitConsolidation(snaps, Params()).empty());
  // Replica 0 fails and is re-initialized: its history is dropped, so the
  // revived instance must sit out one tick before it can be drained again.
  monitor.Forget(0);
  snaps[0].kv_used_frac = 0.05;
  monitor.Observe(snaps);
  EXPECT_TRUE(BestFitConsolidation(snaps, Params()).empty());
}

// Property sweep: for random inputs, any produced plan satisfies the
// algorithm's invariants.
class BestFitPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BestFitPropertyTest, PlanInvariantsHold) {
  Rng rng(GetParam());
  RepackParams params;
  params.c_max_frac = 0.99;
  params.batch_bound = static_cast<int>(rng.UniformInt(8, 512));
  int n = static_cast<int>(rng.UniformInt(2, 64));
  std::vector<ReplicaSnapshot> snaps;
  for (int i = 0; i < n; ++i) {
    ReplicaSnapshot s = Snap(i, rng.Uniform(0.0, 1.0), static_cast<int>(rng.UniformInt(0, 600)),
                             rng.Uniform(0.0, 1.0), static_cast<int>(rng.UniformInt(0, 3)));
    s.eligible = rng.Bernoulli(0.9);
    snaps.push_back(s);
  }
  RepackPlan plan = BestFitConsolidation(snaps, params);

  std::set<int> sources;
  std::map<int, double> dst_kv;
  std::map<int, int> dst_reqs;
  std::map<int, const ReplicaSnapshot*> by_id;
  for (const auto& s : snaps) {
    by_id[s.replica_id] = &s;
  }
  for (const auto& [src, dst] : plan.moves) {
    // A source is drained at most once and never into itself.
    EXPECT_TRUE(sources.insert(src).second);
    EXPECT_NE(src, dst);
    // A destination is never itself drained.
    EXPECT_EQ(sources.count(dst), 0u);
    dst_kv[dst] += by_id.at(src)->kv_used_frac;
    dst_reqs[dst] += by_id.at(src)->num_reqs;
    // Sources were genuine ramp-down candidates.
    const ReplicaSnapshot& s = *by_id.at(src);
    EXPECT_TRUE(s.eligible);
    EXPECT_EQ(s.num_waiting, 0);
    EXPECT_LT(s.num_reqs, params.batch_bound);
  }
  // No planned source is also a destination (Algorithm 1 removes chosen
  // destinations from S). Without this, chained moves under-count a
  // destination's true post-move load when it is later drained.
  for (const auto& [src, dst] : plan.moves) {
    EXPECT_EQ(dst_kv.count(src), 0u) << "replica " << src
                                     << " drained after receiving a move";
  }
  // Post-apply destination load — snapshot plus everything received, which
  // thanks to the no-chaining rule is the true final load — respects C_max
  // and B.
  for (const auto& [dst, extra] : dst_kv) {
    EXPECT_LE(by_id.at(dst)->kv_used_frac + extra, params.c_max_frac + 1e-9);
    EXPECT_LE(by_id.at(dst)->num_reqs + dst_reqs[dst], params.batch_bound);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BestFitPropertyTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace laminar
