#include "src/rollout/replica.h"

#include <gtest/gtest.h>

#include "src/cluster/hardware.h"
#include "src/common/rng.h"
#include "src/data/prompt_pool.h"
#include "src/llm/model_spec.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"

namespace laminar {
namespace {

std::vector<TrajectoryWork> MakeWorks(PromptPool& pool, int n) {
  std::vector<TrajectoryWork> works;
  for (auto& rec : pool.NextBatch(n, 0)) {
    TrajectoryWork w;
    w.record = rec;
    w.InitContext();
    works.push_back(w);
  }
  return works;
}

class ReplicaTest : public ::testing::Test {
 protected:
  ReplicaTest()
      : decode_(Qwen25_7B(), MachineSpec{}, 1),
        pool_(WorkloadGenerator(WorkloadConfig{}, Rng(7)), 16, Rng(9)) {}

  RolloutReplica MakeReplica(int max_concurrency = 1024, int id = 0) {
    ReplicaConfig rc;
    rc.id = id;
    rc.max_concurrency = max_concurrency;
    return RolloutReplica(&sim_, rc, decode_, decode_.KvCapacityTokens());
  }

  Simulator sim_;
  DecodeModel decode_;
  PromptPool pool_;
};

TEST_F(ReplicaTest, CompletesAllAssignedWork) {
  RolloutReplica replica = MakeReplica();
  int completed = 0;
  int64_t decode_tokens_expected = 0;
  replica.set_on_complete([&](TrajectoryRecord rec) {
    ++completed;
    EXPECT_EQ(rec.weight_versions.size(), 1u);
    EXPECT_TRUE(rec.finished > SimTime::Zero());
  });
  bool batch_done = false;
  replica.set_on_batch_done([&](RolloutReplica*) { batch_done = true; });

  auto works = MakeWorks(pool_, 64);
  for (const auto& w : works) {
    decode_tokens_expected += w.record.spec.total_decode_tokens();
  }
  replica.AssignWork(std::move(works));
  sim_.RunUntilIdle();

  EXPECT_EQ(completed, 64);
  EXPECT_TRUE(batch_done);
  EXPECT_EQ(replica.phase(), ReplicaPhase::kIdle);
  EXPECT_EQ(replica.num_reqs(), 0);
  // Every decode token was produced exactly once.
  EXPECT_EQ(replica.metrics().decode_tokens, decode_tokens_expected);
  // KVCache accounting returns to zero when the replica drains.
  EXPECT_NEAR(replica.kv_used_tokens(), 0.0, 1e-6);
}

TEST_F(ReplicaTest, LargeBatchDrainsAndKvReturnsToZero) {
  RolloutReplica replica = MakeReplica(1024);
  int completed = 0;
  replica.set_on_complete([&](TrajectoryRecord) { ++completed; });
  replica.AssignWork(MakeWorks(pool_, 1024));
  sim_.RunUntilIdle();
  EXPECT_EQ(completed, 1024);
  EXPECT_EQ(replica.num_reqs(), 0);
  EXPECT_NEAR(replica.kv_used_tokens(), 0.0, 1e-6);
  EXPECT_EQ(replica.phase(), ReplicaPhase::kIdle);
}

TEST_F(ReplicaTest, KvUtilizationStaysWithinCapacity) {
  RolloutReplica replica = MakeReplica(1024);
  replica.set_on_complete([](TrajectoryRecord) {});
  replica.AssignWork(MakeWorks(pool_, 512));
  // Step through and check the invariant after every event.
  while (sim_.Step()) {
    EXPECT_LE(replica.kv_used_tokens(), replica.kv_capacity_tokens() + 1e-6);
    EXPECT_GE(replica.kv_used_tokens(), -1e-6);
  }
}

TEST_F(ReplicaTest, PauseResumePreservesWork) {
  RolloutReplica replica = MakeReplica();
  int completed = 0;
  replica.set_on_complete([&](TrajectoryRecord) { ++completed; });
  replica.AssignWork(MakeWorks(pool_, 32));
  sim_.RunUntil(SimTime(5.0));
  replica.Pause();
  EXPECT_EQ(replica.phase(), ReplicaPhase::kPaused);
  int64_t tokens_at_pause = replica.metrics().decode_tokens;
  // Nothing advances while paused.
  sim_.RunUntil(SimTime(50.0));
  EXPECT_EQ(replica.metrics().decode_tokens, tokens_at_pause);
  replica.Resume();
  sim_.RunUntilIdle();
  EXPECT_EQ(completed, 32);
}

TEST_F(ReplicaTest, PartialRolloutResumeStampsNewVersion) {
  RolloutReplica replica = MakeReplica();
  std::vector<TrajectoryRecord> done;
  replica.set_on_complete([&](TrajectoryRecord rec) { done.push_back(rec); });
  replica.AssignWork(MakeWorks(pool_, 32));
  sim_.RunUntil(SimTime(5.0));
  replica.Pause();
  replica.Resume(/*new_version=*/3, /*recompute_kv=*/true);
  EXPECT_EQ(replica.weight_version(), 3);
  sim_.RunUntilIdle();
  ASSERT_EQ(done.size(), 32u);
  int mixed = 0;
  for (const auto& rec : done) {
    if (rec.mixed_version()) {
      ++mixed;
    }
  }
  // Everything still decoding at the resume point became mixed-version.
  EXPECT_GT(mixed, 0);
}

TEST_F(ReplicaTest, ExtractAllWorkEmptiesReplica) {
  RolloutReplica replica = MakeReplica();
  replica.set_on_complete([](TrajectoryRecord) {});
  replica.AssignWork(MakeWorks(pool_, 64));
  sim_.RunUntil(SimTime(10.0));
  int before = replica.num_reqs();
  EXPECT_GT(before, 0);
  auto works = replica.ExtractAllWork();
  EXPECT_EQ(static_cast<int>(works.size()), before);
  EXPECT_EQ(replica.num_reqs(), 0);
  EXPECT_NEAR(replica.kv_used_tokens(), 0.0, 1e-6);
  EXPECT_FALSE(replica.busy());
  // Progress must be preserved: some decoded tokens exist.
  int64_t decoded = 0;
  for (const auto& w : works) {
    decoded += w.decoded_in_segment;
  }
  EXPECT_GT(decoded, 0);
}

TEST_F(ReplicaTest, MigratedWorkFinishesOnDestination) {
  RolloutReplica src = MakeReplica();
  RolloutReplica dst = MakeReplica(1024, /*id=*/1);
  int completed = 0;
  src.set_on_complete([&](TrajectoryRecord) { ++completed; });
  dst.set_on_complete([&](TrajectoryRecord) { ++completed; });
  src.AssignWork(MakeWorks(pool_, 32));
  sim_.RunUntil(SimTime(10.0));
  auto works = src.ExtractAllWork();
  int in_flight = static_cast<int>(works.size());
  dst.AssignWork(std::move(works), /*kv_transferred=*/true);
  sim_.RunUntilIdle();
  EXPECT_EQ(completed, 32);
  EXPECT_GT(dst.metrics().migrations_in, 0);
  EXPECT_EQ(in_flight + completed - 32, in_flight);
}

TEST_F(ReplicaTest, KillLosesWorkReviveAcceptsNew) {
  RolloutReplica replica = MakeReplica();
  int completed = 0;
  replica.set_on_complete([&](TrajectoryRecord) { ++completed; });
  replica.AssignWork(MakeWorks(pool_, 32));
  sim_.RunUntil(SimTime(5.0));
  replica.Kill();
  EXPECT_EQ(replica.phase(), ReplicaPhase::kDead);
  EXPECT_EQ(replica.num_reqs(), 0);
  sim_.RunUntilIdle();
  int after_kill = completed;
  replica.Revive();
  replica.AssignWork(MakeWorks(pool_, 16));
  sim_.RunUntilIdle();
  EXPECT_EQ(completed, after_kill + 16);
}

TEST_F(ReplicaTest, DecodeBatchRampsDownAtTail) {
  RolloutReplica replica = MakeReplica();
  replica.set_on_complete([](TrajectoryRecord) {});
  replica.AssignWork(MakeWorks(pool_, 256));
  sim_.RunUntilIdle();
  // The KVCache lifecycle (Figure 9) implies average utilization well below
  // the peak: ramp-up, plateau, ramp-down.
  double avg_batch = replica.metrics().batch_size.AverageUntil(sim_.Now());
  EXPECT_GT(avg_batch, 1.0);
  EXPECT_LT(avg_batch, 256.0);
}

}  // namespace
}  // namespace laminar
