#include "src/core/report_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/core/run.h"

namespace laminar {
namespace {

SystemReport SmallRun() {
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.max_concurrency = 256;
  cfg.warmup_iterations = 0;
  cfg.measure_iterations = 2;
  return RunExperiment(cfg);
}

TEST(ReportIoTest, SummaryCsvContainsHeadlineMetrics) {
  SystemReport rep = SmallRun();
  std::string csv = ReportSummaryCsv(rep);
  EXPECT_NE(csv.find("throughput_tokens_per_sec,"), std::string::npos);
  EXPECT_NE(csv.find("label,laminar/7B/math/16gpu"), std::string::npos);
  EXPECT_NE(csv.find("repack_events,"), std::string::npos);
}

TEST(ReportIoTest, IterationsCsvHasOneRowPerIteration) {
  SystemReport rep = SmallRun();
  std::string csv = IterationsCsv(rep);
  size_t rows = 0;
  for (char c : csv) {
    rows += c == '\n';
  }
  EXPECT_EQ(rows, rep.iterations.size() + 1);  // header + data
}

TEST(ReportIoTest, SeriesCsvAlignsToBuckets) {
  SystemReport rep = SmallRun();
  std::string csv = SeriesCsv(rep, 30.0);
  EXPECT_NE(csv.find("time_s,generation_tokens_per_sec"), std::string::npos);
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
}

TEST(ReportIoTest, WriteReportCsvCreatesAllFiles) {
  SystemReport rep = SmallRun();
  std::string dir =
      (std::filesystem::temp_directory_path() / "laminar_report_io_test").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(WriteReportCsv(rep, dir));
  for (const char* suffix :
       {"_summary.csv", "_iterations.csv", "_series.csv", "_staleness.csv"}) {
    std::string path = dir + "/laminar-7B-math-16gpu" + std::string(suffix);
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 10u) << path;
  }
  std::filesystem::remove_all(dir);
}

TEST(ReportIoTest, StalenessCsvMatchesSamples) {
  SystemReport rep = SmallRun();
  std::string csv = StalenessCsv(rep);
  size_t rows = 0;
  for (char c : csv) {
    rows += c == '\n';
  }
  EXPECT_EQ(rows, rep.staleness_samples.size() + 1);
}

}  // namespace
}  // namespace laminar
