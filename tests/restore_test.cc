// Direct-boot restore suite (DESIGN.md §13): a run restarted from an LMSNAP1
// v2 blob must be indistinguishable from one that never stopped — identical
// fingerprint (reports, iterations, series, ledger, binary trace) and an
// identical boot-barrier re-snapshot — across shard counts, with the serving
// tier on or off, and under crash-restart chaos. The replay-anchored path
// (snapshot_verify) stays alive as the differential oracle: both recovery
// modes must land on the same bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/core/laminar_system.h"
#include "src/core/run.h"
#include "src/fault/injector.h"
#include "src/sim/continuation.h"
#include "src/sim/simulator.h"
#include "src/snapshot/snapshot.h"
#include "src/verify/oracles.h"

namespace laminar {
namespace {

RlSystemConfig RestoreConfig() {
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 16;
  cfg.global_batch = 256;
  cfg.max_concurrency = 128;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 2;
  cfg.seed = 4321;
  cfg.invariants_enabled = true;
  cfg.ledger_enabled = true;
  cfg.trace.enabled = true;
  cfg.trace.ring_capacity = 0;
  return cfg;
}

// One cell of the restore-equivalence matrix: snapshot `base` mid-run, then
// recover both ways — replay-anchored (shard-flipped re-execution verifying
// every field against the blob) and direct boot (adopt + re-mint, at shard
// counts 1 and 4) — and require byte-identical fingerprints and blobs
// everywhere.
void CheckRestoreEquivalence(const RlSystemConfig& base) {
  SystemReport full = RunExperiment(base);
  ASSERT_GT(full.simulated_seconds, 0.0);
  std::string want = RunFingerprint(full);

  RlSystemConfig snapped = base;
  snapped.snapshot_at_seconds = 0.5 * full.simulated_seconds;
  SystemReport a = RunExperiment(snapped);
  ASSERT_NE(a.snapshot, nullptr);
  ASSERT_FALSE(a.snapshot->empty());
  EXPECT_EQ(RunFingerprint(a), want) << "snapshot perturbed the run";

  // Replay-anchored differential oracle: re-execute from t=0 with flipped
  // shards, pausing at the same barrier to verify field-by-field.
  RlSystemConfig replay = snapped;
  replay.shards = base.shards == 1 ? 4 : 1;
  replay.snapshot_verify = a.snapshot;
  SystemReport b = RunExperiment(replay);
  ASSERT_NE(b.snapshot, nullptr);
  EXPECT_EQ(*b.snapshot, *a.snapshot);
  EXPECT_TRUE(b.snapshot_mismatches.empty())
      << b.snapshot_mismatches.size()
      << " mismatches; first: " << b.snapshot_mismatches.front();
  EXPECT_EQ(RunFingerprint(b), want);

  // Direct boot: O(1)-of-the-prefix adoption, then run to completion.
  for (int shards : {1, 4}) {
    RlSystemConfig boot = base;
    boot.shards = shards;
    boot.restore_from = a.snapshot;
    // Also field-diff the adopted state against the blob, so a drifted boot
    // names the offending fields instead of just failing the byte compare.
    boot.snapshot_verify = a.snapshot;
    SystemReport r = RunExperiment(boot);
    EXPECT_TRUE(r.restored);
    EXPECT_TRUE(r.snapshot_mismatches.empty())
        << r.snapshot_mismatches.size() << " adopted-state mismatches at shards="
        << shards << "; first: " << r.snapshot_mismatches.front();
    EXPECT_EQ(r.invariant_violations, 0)
        << "direct boot at shards=" << shards << " violated invariants";
    ASSERT_NE(r.snapshot, nullptr);
    // The boot-barrier re-snapshot byte-equals the blob we booted from: the
    // adopted state IS the serialized state.
    EXPECT_EQ(*r.snapshot, *a.snapshot)
        << "boot re-snapshot drifted at shards=" << shards;
    // And the continued run is indistinguishable from never having stopped.
    EXPECT_EQ(RunFingerprint(r), want)
        << "direct boot diverged at shards=" << shards;
  }
}

TEST(DirectBootTest, ResumesByteIdenticalToFullRun) {
  CheckRestoreEquivalence(RestoreConfig());
}

// Regression (found by the fuzzer's always-on restore oracle, seeds 0/4/6):
// tool-calling scenarios drifted on direct boot — the boot-barrier
// re-snapshot was not byte-identical to the blob.
TEST(DirectBootTest, ToolCallingResumesByteIdentical) {
  RlSystemConfig cfg = RestoreConfig();
  cfg.task = TaskKind::kToolCalling;
  CheckRestoreEquivalence(cfg);
}

TEST(DirectBootTest, ServingTierResumesByteIdentical) {
  RlSystemConfig cfg = RestoreConfig();
  cfg.serving.enabled = true;
  cfg.serving.base_rate_per_sec = 2.0;
  cfg.serving.diurnal_amplitude = 0.6;
  cfg.serving.diurnal_period_seconds = 300.0;
  CheckRestoreEquivalence(cfg);
}

TEST(DirectBootTest, CrashRestartChaosResumesByteIdentical) {
  RlSystemConfig cfg = RestoreConfig();
  cfg.chaos_enabled = true;
  cfg.chaos_seed = 99;
  CheckRestoreEquivalence(cfg);
}

TEST(DirectBootTest, ServingPlusChaosResumesByteIdentical) {
  RlSystemConfig cfg = RestoreConfig();
  cfg.serving.enabled = true;
  cfg.serving.base_rate_per_sec = 2.0;
  cfg.chaos_enabled = true;
  cfg.chaos_seed = 7;
  CheckRestoreEquivalence(cfg);
}

// Regression: snapshot taken INSIDE a machine-stall window. The blob then
// carries a frozen machine (beats stopped, replicas mid-freeze) and a pending
// stall-thaw continuation, and the direct boot must resume the stall exactly
// — same thaw instant, same redirected work, same RNG draw positions in every
// forked stream (a warm start that re-seeded a stream from scratch instead of
// adopting (seed, draws) from the blob would desynchronize every later
// length/score draw and show up here as a fingerprint diff).
TEST(DirectBootTest, SnapshotInsideStallWindowResumesByteIdentical) {
  RlSystemConfig cfg = RestoreConfig();
  SystemReport probe = RunExperiment(cfg);
  ASSERT_GT(probe.simulated_seconds, 60.0);
  double mid = 0.5 * probe.simulated_seconds;
  // Stall window [mid-15, mid+45] brackets the barrier. The stall outlives
  // the miss threshold, so at the barrier the machine is reported dead with a
  // replacement in flight, redirected work is back in the pool, and the
  // now-moot thaw continuation is still pending in the heap — all of which
  // must ride the blob.
  FaultEvent stall{mid - 15.0, FaultKind::kMachineStall, 0, 60.0};

  auto run_scripted = [&stall](const RlSystemConfig& c) {
    auto driver = MakeDriver(c);
    static_cast<LaminarSystem*>(driver.get())->ScheduleFault(stall);
    return driver->Run();
  };

  SystemReport full = run_scripted(cfg);
  EXPECT_GE(full.faults_injected, 1);
  std::string want = RunFingerprint(full);

  RlSystemConfig snapped = cfg;
  snapped.snapshot_at_seconds = mid;
  SystemReport a = run_scripted(snapped);
  ASSERT_NE(a.snapshot, nullptr);
  EXPECT_EQ(RunFingerprint(a), want) << "snapshot perturbed the stalled run";

  // Direct boot. The scripted fault is NOT re-scheduled: it already fired
  // before the barrier, and its thaw rides the blob's event heap.
  RlSystemConfig boot = cfg;
  boot.restore_from = a.snapshot;
  SystemReport r = RunExperiment(boot);
  EXPECT_TRUE(r.restored);
  EXPECT_EQ(r.invariant_violations, 0);
  ASSERT_NE(r.snapshot, nullptr);
  EXPECT_EQ(*r.snapshot, *a.snapshot) << "boot re-snapshot drifted mid-stall";
  EXPECT_EQ(RunFingerprint(r), want) << "direct boot diverged out of the stall";
}

// Minimal continuation client owning one reconstructible PeriodicTask;
// records the sim time of every fire so cadences can be compared across a
// snapshot/adopt boundary.
class TickRecorder : public ContinuationClient {
 public:
  static constexpr uint16_t kTick = 0x7001;

  explicit TickRecorder(Simulator* sim)
      : sim_(sim),
        comp_(ContinuationComponentId(kContFamilySystem, 99)),
        task_(sim, 1.0, comp_, kTick,
              [this] { fires_.push_back(sim_->Now().seconds()); }) {
    sim_->continuations().Register(comp_, this);
  }
  ~TickRecorder() override { sim_->continuations().Unregister(comp_); }

  void Start() { task_.Start(); }
  const std::vector<double>& fires() const { return fires_; }

  void RunContinuation(uint16_t kind, const ContinuationPayload&) override {
    ASSERT_EQ(kind, kTick);
    task_.Fire();
  }
  void RestoreContinuation(uint16_t kind, const ContinuationPayload&,
                           SimTime at) override {
    ASSERT_EQ(kind, kTick);
    task_.RestorePending(at);
  }

 private:
  Simulator* sim_;
  int32_t comp_;
  PeriodicTask task_;
  std::vector<double> fires_;
};

// Regression: a PeriodicTask tick re-arms its own event slot in place
// (RearmCurrentAfter flips the slot to kRearmed rather than retiring it), so
// a snapshot taken at the barrier immediately after the fire — the smallest
// representable instant past fire_time — sees the next tick only if the heap
// walk treats kRearmed slots as live. If it does not, the blob silently
// drops every periodic driver (heartbeats, repack monitor, serving sweep)
// whose tick coincides with the barrier, and the direct boot goes quiet.
TEST(DirectBootTest, RearmedPeriodicTickSurvivesSnapshotAtBarrier) {
  const double barrier =
      std::nextafter(1.0, std::numeric_limits<double>::infinity());

  Simulator sim;
  TickRecorder rec(&sim);
  rec.Start();
  sim.RunUntil(SimTime(barrier));
  ASSERT_EQ(rec.fires(), std::vector<double>({1.0}));
  ASSERT_EQ(sim.pending_events(), 1u)
      << "re-armed tick not pending before the snapshot";

  SnapshotWriter writer;
  SnapshotTx tx(&writer);
  sim.Snapshot(tx);
  std::string blob = writer.Finish();

  Simulator boot;
  TickRecorder boot_rec(&boot);
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(blob, &error)) << error;
  SnapshotTx adopt(&reader, SnapshotMode::kAdopt);
  boot.Snapshot(adopt);
  ASSERT_TRUE(adopt.mismatches().empty());
  boot.RemintRestoredEvents();
  EXPECT_EQ(boot.pending_events(), 1u) << "re-armed tick dropped on adopt";

  // The adopted heap re-serializes to the exact bytes it was booted from.
  SnapshotWriter rewriter;
  SnapshotTx retx(&rewriter);
  boot.Snapshot(retx);
  EXPECT_EQ(rewriter.Finish(), blob) << "boot re-snapshot drifted";

  // Identical cadence from the barrier on: the restored task fires at 2, 3,
  // 4, 5 exactly as the uninterrupted one does.
  sim.RunUntil(SimTime(5.5));
  boot.RunUntil(SimTime(5.5));
  EXPECT_EQ(rec.fires(), std::vector<double>({1.0, 2.0, 3.0, 4.0, 5.0}));
  EXPECT_EQ(boot_rec.fires(), std::vector<double>({2.0, 3.0, 4.0, 5.0}));
}

}  // namespace
}  // namespace laminar
