// Serving suite (DESIGN.md §14): the online serving tier on the training
// fleet. Property tests pin the seeded diurnal traffic generator (byte
// determinism, arrival counts against the analytic rate integral, and the
// metamorphic rate-doubling law); full-system tests pin byte-identity of
// serving-armed runs across shard counts and sweep threads, admission
// conservation in the report, byte-invisibility of a disabled tier, and the
// chaos interaction: a gray fail-slow replica under serving load violates
// the SLO *before* the slowness score quarantines it, and attainment
// recovers once the sick replica is drained.
#include "src/workload/serving_traffic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/laminar_system.h"
#include "src/core/run.h"
#include "src/exp/sweep.h"
#include "src/trace/query.h"
#include "src/verify/oracles.h"

namespace laminar {
namespace {

ServingTrafficConfig SmallTraffic() {
  ServingTrafficConfig sc;
  sc.enabled = true;
  sc.base_rate_per_sec = 2.0;
  sc.diurnal_amplitude = 0.6;
  sc.diurnal_period_seconds = 300.0;
  sc.slo_base_seconds = 60.0;
  sc.slo_per_token_seconds = 0.05;
  return sc;
}

// ---------------------------------------------------------------------------
// Traffic generator properties.

TEST(ServingTrafficTest, PerSeedStreamIsByteDeterministic) {
  ServingTrafficConfig sc = SmallTraffic();
  ServingTrafficGenerator a(sc, Rng(7).Fork("serving"));
  ServingTrafficGenerator b(sc, Rng(7).Fork("serving"));
  ServingTrafficGenerator other(sc, Rng(8).Fork("serving"));
  bool any_difference = false;
  for (int i = 0; i < 500; ++i) {
    ServingRequest ra = a.Next();
    ServingRequest rb = b.Next();
    ASSERT_EQ(ra.seq, i);
    ASSERT_EQ(ra.seq, rb.seq);
    // Bit-exact, not approximately equal: the whole determinism story rests
    // on the generator being a pure function of (config, seed).
    ASSERT_EQ(ra.arrival_seconds, rb.arrival_seconds) << "seq " << i;
    ASSERT_EQ(ra.prompt_tokens, rb.prompt_tokens) << "seq " << i;
    ASSERT_EQ(ra.decode_tokens, rb.decode_tokens) << "seq " << i;
    ASSERT_EQ(ra.deadline_seconds, rb.deadline_seconds) << "seq " << i;
    ServingRequest ro = other.Next();
    if (ro.arrival_seconds != ra.arrival_seconds) {
      any_difference = true;
    }
    // The deadline law holds for every request.
    EXPECT_DOUBLE_EQ(ra.deadline_seconds,
                     ra.arrival_seconds + sc.slo_base_seconds +
                         static_cast<double>(ra.decode_tokens) *
                             sc.slo_per_token_seconds);
    EXPECT_GE(ra.prompt_tokens, sc.prompt_min_tokens);
    EXPECT_LE(ra.prompt_tokens, sc.prompt_max_tokens);
    EXPECT_GE(ra.decode_tokens, sc.decode_min_tokens);
    EXPECT_LE(ra.decode_tokens, sc.decode_max_tokens);
  }
  EXPECT_TRUE(any_difference) << "different seeds produced identical streams";
}

TEST(ServingTrafficTest, ArrivalsAreTimeOrderedAndStartAfterWarmup) {
  ServingTrafficConfig sc = SmallTraffic();
  sc.start_seconds = 120.0;
  ServingTrafficGenerator gen(sc, Rng(11).Fork("serving"));
  double prev = sc.start_seconds;
  for (int i = 0; i < 300; ++i) {
    ServingRequest r = gen.Next();
    EXPECT_GE(r.arrival_seconds, prev) << "seq " << i;
    prev = r.arrival_seconds;
  }
}

TEST(ServingTrafficTest, ArrivalCountMatchesRateIntegral) {
  // Empirical arrival counts over a long window agree with the analytic
  // integral of the diurnal rate to within 4 sigma of the Poisson count.
  ServingTrafficConfig sc = SmallTraffic();
  const double kHorizon = 4000.0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    ServingTrafficGenerator gen(sc, Rng(seed).Fork("serving"));
    int64_t count = 0;
    while (gen.Next().arrival_seconds <= kHorizon) {
      ++count;
    }
    double expected = gen.ExpectedArrivals(0.0, kHorizon);
    ASSERT_GT(expected, 1000.0);
    double sigma = std::sqrt(expected);
    EXPECT_NEAR(static_cast<double>(count), expected, 4.0 * sigma)
        << "seed " << seed;
  }
}

TEST(ServingTrafficTest, RateIntegralMatchesQuadrature) {
  // ExpectedArrivals is the closed-form integral of RateAt; pin it against
  // brute-force quadrature over an awkward, phase-shifted window.
  ServingTrafficConfig sc = SmallTraffic();
  sc.phase_radians = 1.3;
  ServingTrafficGenerator gen(sc, Rng(5).Fork("serving"));
  const double t0 = 37.5, t1 = 1234.25;
  const int kSteps = 200000;
  double dt = (t1 - t0) / kSteps, sum = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    sum += gen.RateAt(t0 + (static_cast<double>(i) + 0.5) * dt) * dt;
  }
  EXPECT_NEAR(gen.ExpectedArrivals(t0, t1), sum, 1e-6 * sum);
  EXPECT_LE(gen.RateAt(t0), gen.PeakRate());
}

TEST(ServingTrafficTest, DoublingPeakRateDoublesArrivals) {
  // Metamorphic law: scaling the base rate by 2 exactly doubles the expected
  // arrival count, and empirical counts track the doubling.
  ServingTrafficConfig sc = SmallTraffic();
  ServingTrafficConfig sc2 = sc;
  sc2.base_rate_per_sec *= 2.0;
  const double kHorizon = 3000.0;
  ServingTrafficGenerator g1(sc, Rng(21).Fork("serving"));
  ServingTrafficGenerator g2(sc2, Rng(22).Fork("serving"));
  EXPECT_DOUBLE_EQ(g2.ExpectedArrivals(0.0, kHorizon),
                   2.0 * g1.ExpectedArrivals(0.0, kHorizon));
  EXPECT_DOUBLE_EQ(g2.PeakRate(), 2.0 * g1.PeakRate());
  int64_t n1 = 0, n2 = 0;
  while (g1.Next().arrival_seconds <= kHorizon) {
    ++n1;
  }
  while (g2.Next().arrival_seconds <= kHorizon) {
    ++n2;
  }
  // Var(n2 - 2*n1) = 2*lambda*T + 4*lambda*T = 6*lambda*T for independent
  // Poisson draws; allow 5 sigma.
  double lambda_t = g1.ExpectedArrivals(0.0, kHorizon);
  double sigma = std::sqrt(6.0 * lambda_t);
  EXPECT_NEAR(static_cast<double>(n2), 2.0 * static_cast<double>(n1),
              5.0 * sigma);
}

// ---------------------------------------------------------------------------
// Full-system serving runs.

RlSystemConfig ServingConfig() {
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.group_size = 8;
  cfg.num_minibatches = 4;
  cfg.max_concurrency = 128;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 2;
  cfg.seed = 77;
  cfg.invariants_enabled = true;
  cfg.serving = SmallTraffic();
  return cfg;
}

TEST(ServingSystemTest, ReportConservesRequestsAndBooksDeadlines) {
  SystemReport rep = RunExperiment(ServingConfig());
  EXPECT_TRUE(rep.serving_enabled);
  EXPECT_GT(rep.serving_requests, 0);
  EXPECT_GT(rep.serving_admitted, 0);
  EXPECT_GT(rep.serving_completed, 0);
  // Every arrival is rejected, terminal, or still in flight at run end.
  EXPECT_EQ(rep.serving_requests,
            rep.serving_rejected + rep.serving_completed + rep.serving_timed_out +
                rep.serving_failed + rep.serving_inflight_at_end);
  EXPECT_EQ(rep.serving_deadline_hits + rep.serving_deadline_misses,
            rep.serving_completed);
  EXPECT_LE(rep.serving_completed, rep.serving_admitted);
  EXPECT_GE(rep.serving_slo_attainment, 0.0);
  EXPECT_LE(rep.serving_slo_attainment, 1.0);
  EXPECT_LE(rep.serving_latency_p50_seconds, rep.serving_latency_p99_seconds);
  // The invariant sweep audited the serving ledger live, and held.
  EXPECT_GT(rep.invariant_checks, 0);
  EXPECT_EQ(rep.invariant_violations, 0);
  // The training side still made progress underneath the serving load.
  EXPECT_EQ(rep.iterations_completed, 3);
}

TEST(ServingSystemTest, ServingRunIsByteIdenticalAcrossShards) {
  RlSystemConfig serial = ServingConfig();
  serial.trace.enabled = true;
  RlSystemConfig sharded = serial;
  sharded.shards = 4;
  SystemReport a = RunExperiment(serial);
  SystemReport b = RunExperiment(sharded);
  EXPECT_GT(a.serving_completed, 0);
  EXPECT_EQ(RunFingerprint(a), RunFingerprint(b));
}

TEST(ServingSystemTest, ServingRunIsByteIdenticalAcrossSweepThreads) {
  std::vector<RlSystemConfig> grid;
  for (uint64_t seed : {77u, 78u, 79u}) {
    RlSystemConfig cfg = ServingConfig();
    cfg.seed = seed;
    grid.push_back(cfg);
  }
  SweepOptions one;
  one.num_threads = 1;
  SweepOptions three;
  three.num_threads = 3;
  std::vector<SystemReport> a = RunExperiments(grid, one);
  std::vector<SystemReport> b = RunExperiments(grid, three);
  ASSERT_EQ(a.size(), grid.size());
  ASSERT_EQ(b.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(a[i].serving_requests, 0) << "seed " << grid[i].seed;
    EXPECT_EQ(RunFingerprint(a[i]), RunFingerprint(b[i]))
        << "seed " << grid[i].seed;
  }
}

TEST(ServingSystemTest, DisabledTierIsByteInvisible) {
  // A disabled serving tier must leave the run byte-identical to a config
  // that never heard of serving — even when every other serving knob is set.
  RlSystemConfig base = ServingConfig();
  base.serving = ServingTrafficConfig{};
  base.trace.enabled = true;
  RlSystemConfig tweaked = base;
  tweaked.serving = SmallTraffic();
  tweaked.serving.enabled = false;
  SystemReport a = RunExperiment(base);
  SystemReport b = RunExperiment(tweaked);
  EXPECT_FALSE(a.serving_enabled);
  EXPECT_EQ(a.serving_requests, 0);
  EXPECT_EQ(RunFingerprint(a), RunFingerprint(b));
}

TEST(ServingSystemTest, StaticPartitionPinsServingToDedicatedReplicas) {
  RlSystemConfig cfg = ServingConfig();
  cfg.serving.dedicated_replicas = 1;
  cfg.trace.enabled = true;
  SystemReport rep = RunExperiment(cfg);
  EXPECT_GT(rep.serving_admitted, 0);
  // Dedicated mode never needs to evict rollout decode: serving lands only
  // on replicas the rollout engine cannot touch.
  EXPECT_EQ(rep.serving_preemptions, 0);
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);
  std::vector<TraceEvent> admits =
      query.Instants(TraceSelector().Name("manager/serving_admit"));
  ASSERT_FALSE(admits.empty());
  for (const TraceEvent& e : admits) {
    EXPECT_EQ(e.entity, 0) << "serving admitted onto a rollout replica";
  }
  EXPECT_EQ(rep.invariant_violations, 0);
}

TEST(ServingSystemTest, ColocatedModePreemptsRolloutDecodeUnderPressure) {
  // Colocated serving with heavy traffic on a KV-saturated fleet must
  // exercise the serving-preempts-decode path: rollout work parked via the
  // recovery path and later redirected, with zero invariant violations.
  RlSystemConfig cfg = ServingConfig();
  cfg.max_concurrency = 1024;  // saturate per-replica KV with rollout decode
  cfg.serving.base_rate_per_sec = 6.0;
  // Long-context requests: bigger than the rollout admission headroom, so
  // placing one forces an eviction instead of waiting for natural drain.
  cfg.serving.prompt_median_tokens = 16384.0;
  cfg.serving.prompt_max_tokens = 65536;
  cfg.serving.decode_median_tokens = 2048.0;
  cfg.serving.decode_max_tokens = 8192;
  cfg.serving.slo_base_seconds = 600.0;
  cfg.trace.enabled = true;
  SystemReport rep = RunExperiment(cfg);
  EXPECT_GT(rep.serving_admitted, 0);
  EXPECT_GT(rep.serving_preemptions, 0);
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);
  EXPECT_FALSE(query.Instants(TraceSelector().Name("manager/serving_preempt"))
                   .empty());
  EXPECT_EQ(rep.invariant_violations, 0);
  EXPECT_EQ(rep.iterations_completed, 3);
}

// ---------------------------------------------------------------------------
// Chaos interaction: gray failure under serving load.

TEST(ServingChaosTest, FailSlowReplicaViolatesSloBeforeQuarantineThenRecovers) {
  // A replica silently drops to 10% of its speed while serving user
  // traffic. The SLO dashboard is the first casualty: the requests that end
  // up missing their deadlines were admitted *before* the slowness score
  // landed the quarantine — gray failures do serving damage ahead of
  // detection. Once the sick replica is out of rotation and healed, new
  // arrivals go back to hitting their deadlines.
  RlSystemConfig cfg = ServingConfig();
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 4;
  cfg.serving.base_rate_per_sec = 6.0;
  cfg.serving.slo_base_seconds = 15.0;
  cfg.trace.enabled = true;
  const double kFaultAt = 60.0;
  const double kDuration = 100.0;
  auto driver = MakeDriver(cfg);
  auto* sys = static_cast<LaminarSystem*>(driver.get());
  sys->ScheduleFault({kFaultAt, FaultKind::kReplicaSlow, 2, kDuration, 0.10});
  SystemReport rep = driver->Run();

  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);
  auto named = [](const char* name) { return TraceSelector().Name(name); };

  std::vector<TraceEvent> quarantines = query.Instants(named("manager/quarantine"));
  ASSERT_FALSE(quarantines.empty()) << "slowness score never fired";
  double quarantine_at = quarantines.front().time;
  EXPECT_GT(quarantine_at, kFaultAt);

  // The gray window did SLO damage before detection could stop it: every
  // serving_miss span begins at the request's arrival, and the earliest
  // miss arrived before the quarantine landed (spans are begin-sorted).
  std::vector<TraceEvent> misses = query.Spans(named("manager/serving_miss"));
  ASSERT_FALSE(misses.empty()) << "fail-slow replica caused no SLO misses";
  EXPECT_LT(misses.front().time, quarantine_at)
      << "first missed request arrived only after the quarantine";

  // Attainment recovers once the fault heals and the quarantine lifts:
  // among requests arriving after the episode, hits dominate again.
  std::vector<TraceEvent> hits = query.Spans(named("manager/serving_hit"));
  double settle = kFaultAt + kDuration + 20.0;
  int64_t late_hits = 0, late_misses = 0;
  for (const TraceEvent& e : hits) {
    if (e.time >= settle) {
      ++late_hits;
    }
  }
  for (const TraceEvent& e : misses) {
    if (e.time >= settle) {
      ++late_misses;
    }
  }
  ASSERT_GT(late_hits + late_misses, 0) << "no completions after recovery";
  double late_attainment =
      static_cast<double>(late_hits) / static_cast<double>(late_hits + late_misses);
  EXPECT_GE(late_attainment, 0.9)
      << late_hits << " hits vs " << late_misses << " misses after recovery";

  EXPECT_GE(rep.slow_events, 1);
  EXPECT_EQ(rep.invariant_violations, 0);
}

// The same scripted drill is bit-reproducible run to run — serving, chaos
// detection, and recovery all ride the deterministic event engine.
TEST(ServingChaosTest, ScriptedGrayFailureDrillIsDeterministic) {
  auto run_once = [] {
    RlSystemConfig cfg = ServingConfig();
    cfg.serving.base_rate_per_sec = 4.0;
    cfg.serving.slo_base_seconds = 30.0;
    auto driver = MakeDriver(cfg);
    auto* sys = static_cast<LaminarSystem*>(driver.get());
    sys->ScheduleFault({60.0, FaultKind::kReplicaSlow, 2, 100.0, 0.10});
    SystemReport rep = driver->Run();
    EXPECT_EQ(rep.invariant_violations, 0);
    return RunFingerprint(rep);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace laminar
