// Sharded-execution determinism stress: full-system runs must produce a
// byte-identical fingerprint (report CSVs, chaos counters, push ledger, and
// binary-trace hash) for every shard count and worker count, and repeated
// sharded runs must be identical to each other. This is the end-to-end
// oracle for the conservative-window executor in src/sim/shard_exec.*.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/driver_base.h"
#include "src/core/run.h"
#include "src/verify/oracles.h"
#include "src/verify/scenario.h"

namespace laminar {
namespace {

std::string FingerprintWithShards(RlSystemConfig cfg, int shards,
                                  int workers) {
  cfg.shards = shards;
  cfg.shard_workers = workers;
  SystemReport report = RunExperiment(cfg);
  return RunFingerprint(report);
}

RlSystemConfig ArmedScenarioConfig(uint64_t seed) {
  Scenario sc = GenerateScenario(seed);
  RlSystemConfig cfg = sc.config;
  cfg.ledger_enabled = true;
  cfg.trace.enabled = true;
  return cfg;
}

// Replica->lane affinity is per machine, so windows only open when the
// rollout fleet spans several machines. Widen a generated scenario into a
// multi-machine Laminar fleet (tp=1 on 8-GPU machines => 8 replicas per
// machine, 4 machines => 4 populated lanes at shards=4).
RlSystemConfig WideFleetConfig() {
  RlSystemConfig cfg = ArmedScenarioConfig(7);
  cfg.total_gpus = 40;
  cfg.train_gpus = 8;
  cfg.rollout_gpus = 32;
  return cfg;
}

// Randomized scenarios (chaos, repack, partial rollouts, every system kind
// reachable from the generator) x shards in {1,2,4,8}, inline coordinator.
TEST(ShardDeterminismTest, ScenarioFingerprintsMatchSerialAcrossShardCounts) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    RlSystemConfig cfg = ArmedScenarioConfig(seed);
    std::string serial = FingerprintWithShards(cfg, 1, 0);
    for (int shards : {2, 4, 8}) {
      EXPECT_EQ(serial, FingerprintWithShards(cfg, shards, /*workers=*/0))
          << "seed " << seed << " shards " << shards << " inline";
    }
  }
}

// Worker threads must not change the merge order either.
TEST(ShardDeterminismTest, WorkerPoolMatchesSerialFingerprint) {
  for (uint64_t seed : {7u, 23u}) {
    RlSystemConfig cfg = ArmedScenarioConfig(seed);
    std::string serial = FingerprintWithShards(cfg, 1, 0);
    EXPECT_EQ(serial, FingerprintWithShards(cfg, 4, /*workers=*/3))
        << "seed " << seed;
  }
}

// A fleet wide enough to actually open windows must still match serial —
// this is the config where the parallel path really runs (see
// FullSystemRunsActuallyOpenWindows).
TEST(ShardDeterminismTest, WideFleetMatchesSerialAcrossShardsAndWorkers) {
  RlSystemConfig cfg = WideFleetConfig();
  std::string serial = FingerprintWithShards(cfg, 1, 0);
  for (int shards : {2, 4}) {
    EXPECT_EQ(serial, FingerprintWithShards(cfg, shards, /*workers=*/0))
        << "shards " << shards << " inline";
    EXPECT_EQ(serial, FingerprintWithShards(cfg, shards, /*workers=*/3))
        << "shards " << shards << " threaded";
  }
}

// Same sharded run twice: no hidden dependence on thread interleaving.
TEST(ShardDeterminismTest, RepeatedShardedRunsAreIdentical) {
  RlSystemConfig cfg = ArmedScenarioConfig(11);
  for (int rep = 0; rep < 2; ++rep) {
    EXPECT_EQ(FingerprintWithShards(cfg, 4, 3),
              FingerprintWithShards(cfg, 4, 3))
        << "rep " << rep;
  }
}

// Guard against a vacuous suite: a sharded full-system run must actually
// open windows and execute events inside them, not ride the serial
// fallback the whole way.
TEST(ShardDeterminismTest, FullSystemRunsActuallyOpenWindows) {
  RlSystemConfig cfg = WideFleetConfig();
  cfg.shards = 4;
  cfg.shard_workers = 0;
  std::unique_ptr<DriverBase> driver = MakeDriver(cfg);
  driver->Run();
  const Simulator& sim = driver->sim();
  EXPECT_GT(sim.shard_windows(), 0u)
      << "rejects: no_floor=" << sim.shard_rejects_no_floor()
      << " narrow=" << sim.shard_rejects_narrow()
      << " few_lanes=" << sim.shard_rejects_few_lanes()
      << " serial_steps=" << sim.shard_serial_steps();
  EXPECT_GT(sim.shard_window_events(), 0u);
  EXPECT_GT(sim.shard_actions_replayed(), 0u);
}

// Compact-hash agreement mirrors the golden-file gate in
// perf_regression_test: FNV-1a over the full fingerprint.
TEST(ShardDeterminismTest, FingerprintHashesAgree) {
  RlSystemConfig cfg = ArmedScenarioConfig(3);
  cfg.shards = 1;
  uint64_t serial = FingerprintHash(RunExperiment(cfg));
  cfg.shards = 8;
  cfg.shard_workers = 2;
  EXPECT_EQ(serial, FingerprintHash(RunExperiment(cfg)));
}

}  // namespace
}  // namespace laminar
