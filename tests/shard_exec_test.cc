// Unit tests for the sharded simulator's conservative-window executor
// (src/sim/shard_exec.*): window formation, barrier merge ordering, the
// serial fallback when the lookahead horizon collapses, and the
// ScheduleAfter clock-centralization regression.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace laminar {
namespace {

ShardOptions Opts(int shards, double lookahead, int workers = 0) {
  ShardOptions o;
  o.num_shards = shards;
  o.num_workers = workers;
  o.lookahead_seconds = lookahead;
  return o;
}

TEST(ShardExecTest, WindowsFormWhenLookaheadAdmitsParallelLanes) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/100.0));
  int executed = 0;
  for (int shard = 1; shard <= 2; ++shard) {
    for (int i = 0; i < 8; ++i) {
      sim.ScheduleAtOn(shard, SimTime(1.0 + i), [&executed] { ++executed; });
    }
  }
  sim.RunUntilIdle();
  EXPECT_EQ(executed, 16);
  EXPECT_EQ(sim.executed_events(), 16u);
  EXPECT_GT(sim.shard_windows(), 0u);
  EXPECT_GT(sim.shard_window_events(), 0u);
}

TEST(ShardExecTest, CollapsedHorizonFallsBackToSerial) {
  Simulator sim;
  ShardOptions o = Opts(2, /*lookahead=*/1e-9);
  o.min_window_seconds = 1.0;  // horizon < minimum width => never a window
  sim.ConfigureShards(o);
  int executed = 0;
  for (int shard = 1; shard <= 2; ++shard) {
    for (int i = 0; i < 8; ++i) {
      sim.ScheduleAtOn(shard, SimTime(1.0 + i), [&executed] { ++executed; });
    }
  }
  sim.RunUntilIdle();
  EXPECT_EQ(executed, 16);
  EXPECT_EQ(sim.shard_windows(), 0u);
  EXPECT_EQ(sim.shard_serial_steps(), 16u);
}

// Staged effects (RunOrStage from window events) replay in global (time,
// rank) order at the barrier — interleaved lanes come out time-sorted, and
// a same-time pair keeps scheduling order.
TEST(ShardExecTest, BarrierMergeReplaysEffectsInTimeOrder) {
  Simulator sim;
  sim.ConfigureShards(Opts(4, /*lookahead=*/100.0));
  std::vector<double> order;
  for (int shard = 1; shard <= 4; ++shard) {
    for (int i = 0; i < 6; ++i) {
      double t = 0.25 * shard + i;  // interleaved across lanes
      sim.ScheduleAtOn(shard, SimTime(t), [&sim, &order, t] {
        sim.RunOrStage([&order, t] { order.push_back(t); });
      });
    }
  }
  sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 24u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]) << "at " << i;
  }
  EXPECT_EQ(sim.shard_actions_replayed(), 24u);
}

TEST(ShardExecTest, SameTimeEffectsKeepSchedulingOrder) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/100.0));
  std::vector<int> order;
  // Both events at t=1.0; the lane-1 event was scheduled first, so its
  // staged effect must replay first (serial tie-break = scheduling order).
  sim.ScheduleAtOn(1, SimTime(1.0), [&] {
    sim.RunOrStage([&order] { order.push_back(1); });
    sim.RunOrStage([&order] { order.push_back(2); });
  });
  sim.ScheduleAtOn(2, SimTime(1.0), [&] {
    sim.RunOrStage([&order] { order.push_back(3); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Satellite regression: ScheduleAfter inside a window event computes the
// deadline against the executing lane's own clock, never the control lane's
// (which lags at the window floor).
TEST(ShardExecTest, ScheduleAfterUsesLaneLocalClockInsideWindows) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/100.0));
  std::vector<double> fire_times;
  sim.ScheduleAtOn(1, SimTime(5.0), [&] {
    // Same-lane follow-up: must land at 5.0 + 2.0, not Now()-of-lane-0 + 2.
    sim.ScheduleAfter(2.0, [&] { fire_times.push_back(sim.Now().seconds()); });
  });
  sim.ScheduleAtOn(2, SimTime(1.0), [] {});  // keeps lane 2 busy at the floor
  sim.RunUntilIdle();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 7.0);
}

// Cross-lane schedules staged from a window land on the target lane and run
// at their exact timestamp once they clear the lookahead horizon.
TEST(ShardExecTest, CrossLaneScheduleBeyondHorizonIsDelivered) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/1.0));
  std::vector<std::string> log;
  sim.ScheduleAtOn(1, SimTime(1.0), [&] {
    sim.ScheduleAtOn(2, SimTime(10.0), [&] {
      log.push_back("cross@" + std::to_string(sim.Now().seconds()));
    });
  });
  sim.ScheduleAtOn(2, SimTime(1.5), [&] { log.push_back("local"); });
  sim.RunUntilIdle();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "local");
  EXPECT_EQ(log[1], "cross@10.000000");
}

// The control lane's next event fences every window: replica-lane events at
// later times must not execute before it, which staged effects make
// observable.
TEST(ShardExecTest, ControlLaneEventFencesWindows) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/100.0));
  std::vector<std::string> order;
  sim.ScheduleAt(SimTime(3.0), [&] { order.push_back("control@3"); });
  for (int i = 1; i <= 6; ++i) {
    sim.ScheduleAtOn(1 + i % 2, SimTime(static_cast<double>(i)), [&order, i] {});
    sim.ScheduleAtOn(1 + i % 2, SimTime(static_cast<double>(i)),
                     [&sim, &order, i] {
                       sim.RunOrStage([&order, i] {
                         order.push_back("replica@" + std::to_string(i));
                       });
                     });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order[0], "replica@1");
  EXPECT_EQ(order[1], "replica@2");
  EXPECT_EQ(order[2], "control@3");  // fence honoured despite wide lookahead
  EXPECT_EQ(order[3], "replica@3");  // control event outranks same-time lanes
}

// Rearm (PeriodicTask-style) inside window events keeps firing on the lane.
TEST(ShardExecTest, RearmInsideWindowStaysOnLane) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/100.0));
  int fires = 0;
  sim.ScheduleAtOn(1, SimTime(1.0), [&] {
    ++fires;
    if (fires < 5) {
      sim.RearmCurrentAfter(1.0);
    }
  });
  sim.ScheduleAtOn(2, SimTime(0.5), [] {});
  sim.RunUntilIdle();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.executed_events(), 6u);
}

// An event budget must cut at exactly the same event as a serial run, so
// budgeted RunUntilTrue never opens windows.
TEST(ShardExecTest, BudgetedRunStaysSerial) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/100.0));
  int executed = 0;
  for (int shard = 1; shard <= 2; ++shard) {
    for (int i = 0; i < 10; ++i) {
      sim.ScheduleAtOn(shard, SimTime(1.0 + i), [&executed] { ++executed; });
    }
  }
  bool done = sim.RunUntilTrue([] { return false; }, /*max_events=*/7);
  EXPECT_FALSE(done);
  EXPECT_EQ(executed, 7);
  EXPECT_EQ(sim.shard_windows(), 0u);
}

// Worker threads produce the same replay order as inline execution.
TEST(ShardExecTest, WorkerThreadsMatchInlineExecution) {
  auto run = [](int workers) {
    Simulator sim;
    sim.ConfigureShards(Opts(4, /*lookahead=*/100.0, workers));
    std::vector<double> order;
    for (int shard = 1; shard <= 4; ++shard) {
      for (int i = 0; i < 16; ++i) {
        double t = 0.1 * shard + i;
        sim.ScheduleAtOn(shard, SimTime(t), [&sim, &order, t] {
          sim.RunOrStage([&order, t] { order.push_back(t); });
        });
      }
    }
    sim.RunUntilIdle();
    return order;
  };
  EXPECT_EQ(run(0), run(3));
}

TEST(ShardExecTest, PendingAndCancelAcrossLanes) {
  Simulator sim;
  sim.ConfigureShards(Opts(2, /*lookahead=*/100.0));
  int fired = 0;
  EventId keep = sim.ScheduleAtOn(1, SimTime(1.0), [&fired] { ++fired; });
  EventId kill = sim.ScheduleAtOn(2, SimTime(1.0), [&fired] { ++fired; });
  EXPECT_TRUE(sim.IsPending(keep));
  EXPECT_TRUE(sim.IsPending(kill));
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.Cancel(kill));
  EXPECT_FALSE(sim.IsPending(kill));
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.IsPending(keep));
}

}  // namespace
}  // namespace laminar
