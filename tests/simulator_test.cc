#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/channel.h"

namespace laminar {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime(3.0), [&] { order.push_back(3); });
  sim.ScheduleAt(SimTime(1.0), [&] { order.push_back(1); });
  sim.ScheduleAt(SimTime(2.0), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 3.0);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(SimTime(1.0), [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(SimTime(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.IsPending(id));
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double cancel is a no-op
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(SimTime(i), [&] { ++count; });
  }
  sim.RunUntil(SimTime(5.5));
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 5.5);
  sim.RunUntilIdle();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      sim.ScheduleAfter(0.5, chain);
    }
  };
  sim.ScheduleAfter(0.5, chain);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 50.0);
}

TEST(SimulatorTest, RunUntilTrueStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(SimTime(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntilTrue([&] { return count == 3; }));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(sim.RunUntilTrue([&] { return count == 99; }));
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double at = -1.0;
  sim.ScheduleAt(SimTime(2.0), [&] {
    sim.ScheduleAfter(0.0, [&] { at = sim.Now().seconds(); });
  });
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(at, 2.0);
}

TEST(PeriodicTaskTest, FiresAtPeriodUntilStopped) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 2.0, [&] { ++ticks; });
  task.Start();
  sim.RunUntil(SimTime(9.0));
  EXPECT_EQ(ticks, 4);  // t = 2, 4, 6, 8
  task.Stop();
  sim.RunUntil(SimTime(20.0));
  EXPECT_EQ(ticks, 4);
}

TEST(PeriodicTaskTest, StopInsideCallbackHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 1.0, [&] { ++ticks; });
  PeriodicTask* ptr = &task;
  PeriodicTask stopper(&sim, 3.5, [&, ptr] { ptr->Stop(); });
  task.Start();
  stopper.Start();
  sim.RunUntil(SimTime(10.0));
  EXPECT_EQ(ticks, 3);
}

TEST(SimulatorTest, CancelOwnRearmInsideCallback) {
  Simulator sim;
  int fires = 0;
  EventId rearmed = kInvalidEventId;
  sim.ScheduleAfter(1.0, [&] {
    ++fires;
    rearmed = sim.RearmCurrentAfter(1.0);
    EXPECT_TRUE(sim.IsPending(rearmed));
    EXPECT_TRUE(sim.Cancel(rearmed));  // cancel while still executing
    EXPECT_FALSE(sim.IsPending(rearmed));
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Heap compaction triggered from inside a callback that has already re-armed
// itself must keep the re-armed entry (it is live, not a tombstone).
TEST(SimulatorTest, CompactionPreservesRearmedEvent) {
  Simulator sim;
  std::vector<EventId> victims;
  for (int i = 0; i < 300; ++i) {
    victims.push_back(sim.ScheduleAfter(50.0, [] {}));
  }
  int fires = 0;
  sim.ScheduleAfter(1.0, [&] {
    if (++fires == 1) {
      sim.RearmCurrentAfter(1.0);
      // Mass-cancel drives tombstones past the compaction threshold while
      // the re-armed entry sits in the heap with state kRearmed.
      for (EventId id : victims) {
        sim.Cancel(id);
      }
    }
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fires, 2);
}

// The execution trace of a run — (time, label) per fired event — must be
// bit-identical across two runs with the same seed, even under heavy
// Cancel/reschedule interleaving. This is the engine-level half of the
// determinism contract the parallel sweep (src/exp/sweep.h) relies on.
std::vector<std::pair<double, int>> CancelChurnTrace(uint64_t seed) {
  Simulator sim;
  Rng rng(seed);
  std::vector<std::pair<double, int>> trace;
  std::vector<EventId> pending;
  int next_label = 0;
  std::function<void()> spawn = [&] {
    // Fire: record, then schedule a few successors and cancel a random
    // pending event about half the time.
    trace.emplace_back(sim.Now().seconds(), next_label);
    int n = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < n; ++i) {
      ++next_label;
      pending.push_back(sim.ScheduleAfter(rng.Uniform(0.0, 5.0), spawn));
    }
    if (!pending.empty() && rng.Bernoulli(0.5)) {
      size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pending.size()) - 1));
      sim.Cancel(pending[victim]);
      pending.erase(pending.begin() + static_cast<ptrdiff_t>(victim));
    }
  };
  for (int i = 0; i < 64; ++i) {
    pending.push_back(sim.ScheduleAfter(rng.Uniform(0.0, 5.0), spawn));
  }
  sim.RunUntilIdle(20000);
  return trace;
}

TEST(SimulatorTest, ExecutionOrderIsBitIdenticalAcrossRuns) {
  auto a = CancelChurnTrace(42);
  auto b = CancelChurnTrace(42);
  ASSERT_GT(a.size(), 1000u);
  EXPECT_EQ(a, b);
  // A different seed must produce a different interleaving (sanity check
  // that the trace actually depends on the schedule).
  EXPECT_NE(a, CancelChurnTrace(43));
}

// Cancelled events leave tombstones in the heap but must release their pool
// slot immediately; sustained schedule/cancel churn may not grow the slab or
// let tombstones accumulate without bound.
TEST(SimulatorTest, CancelledEventsDoNotLeakPoolSlots) {
  Simulator sim;
  Rng rng(7);
  constexpr int kBurst = 1000;
  std::vector<EventId> burst;
  for (int round = 0; round < 200; ++round) {
    burst.clear();
    for (int i = 0; i < kBurst; ++i) {
      burst.push_back(sim.ScheduleAfter(rng.Uniform(0.1, 10.0), [] {}));
    }
    for (size_t i = 0; i < burst.size(); ++i) {
      if (i % 10 != 0) {  // cancel 90%
        sim.Cancel(burst[i]);
      }
    }
    // Fire more events than each round's 100 survivors so the live
    // population stays bounded and any slab growth would be a true leak.
    sim.RunUntilIdle(200);
  }
  // Slab growth is bounded by peak simultaneously-pending events (one
  // burst plus a little backlog), not by the 200k events scheduled.
  EXPECT_LE(sim.event_pool_slots(), 4 * kBurst);
  // Tombstone compaction keeps the heap within a constant factor of the
  // live-event count.
  EXPECT_LE(sim.heap_entries(), 4 * sim.pending_events() + 128);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.heap_entries(), 0u);
}

TEST(SerialChannelTest, QueuesConcurrentTransfers) {
  SerialChannel ch(100.0, 0.5);  // 100 B/s, 0.5 s startup
  SimTime done1 = ch.Transfer(SimTime(0.0), 100.0);  // 0.5 + 1.0 = 1.5
  EXPECT_DOUBLE_EQ(done1.seconds(), 1.5);
  // Issued at t=0 too, but must wait for the channel.
  SimTime done2 = ch.Transfer(SimTime(0.0), 200.0);  // 1.5 + 0.5 + 2.0
  EXPECT_DOUBLE_EQ(done2.seconds(), 4.0);
  // Issued after the channel is idle again.
  SimTime done3 = ch.Transfer(SimTime(10.0), 50.0);
  EXPECT_DOUBLE_EQ(done3.seconds(), 11.0);
  EXPECT_DOUBLE_EQ(ch.bytes_carried(), 350.0);
}

TEST(SerialChannelTest, IdealDurationMatchesAlphaBeta) {
  SerialChannel ch(1e9, 1e-3);
  EXPECT_DOUBLE_EQ(ch.IdealDuration(1e9), 1.001);
  EXPECT_DOUBLE_EQ(ch.IdealDuration(0.0), 1e-3);
}

}  // namespace
}  // namespace laminar
