#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/channel.h"

namespace laminar {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime(3.0), [&] { order.push_back(3); });
  sim.ScheduleAt(SimTime(1.0), [&] { order.push_back(1); });
  sim.ScheduleAt(SimTime(2.0), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 3.0);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(SimTime(1.0), [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(SimTime(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.IsPending(id));
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double cancel is a no-op
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(SimTime(i), [&] { ++count; });
  }
  sim.RunUntil(SimTime(5.5));
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 5.5);
  sim.RunUntilIdle();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      sim.ScheduleAfter(0.5, chain);
    }
  };
  sim.ScheduleAfter(0.5, chain);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 50.0);
}

TEST(SimulatorTest, RunUntilTrueStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(SimTime(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntilTrue([&] { return count == 3; }));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(sim.RunUntilTrue([&] { return count == 99; }));
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  double at = -1.0;
  sim.ScheduleAt(SimTime(2.0), [&] {
    sim.ScheduleAfter(0.0, [&] { at = sim.Now().seconds(); });
  });
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(at, 2.0);
}

TEST(PeriodicTaskTest, FiresAtPeriodUntilStopped) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 2.0, [&] { ++ticks; });
  task.Start();
  sim.RunUntil(SimTime(9.0));
  EXPECT_EQ(ticks, 4);  // t = 2, 4, 6, 8
  task.Stop();
  sim.RunUntil(SimTime(20.0));
  EXPECT_EQ(ticks, 4);
}

TEST(PeriodicTaskTest, StopInsideCallbackHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 1.0, [&] { ++ticks; });
  PeriodicTask* ptr = &task;
  PeriodicTask stopper(&sim, 3.5, [&, ptr] { ptr->Stop(); });
  task.Start();
  stopper.Start();
  sim.RunUntil(SimTime(10.0));
  EXPECT_EQ(ticks, 3);
}

TEST(SerialChannelTest, QueuesConcurrentTransfers) {
  SerialChannel ch(100.0, 0.5);  // 100 B/s, 0.5 s startup
  SimTime done1 = ch.Transfer(SimTime(0.0), 100.0);  // 0.5 + 1.0 = 1.5
  EXPECT_DOUBLE_EQ(done1.seconds(), 1.5);
  // Issued at t=0 too, but must wait for the channel.
  SimTime done2 = ch.Transfer(SimTime(0.0), 200.0);  // 1.5 + 0.5 + 2.0
  EXPECT_DOUBLE_EQ(done2.seconds(), 4.0);
  // Issued after the channel is idle again.
  SimTime done3 = ch.Transfer(SimTime(10.0), 50.0);
  EXPECT_DOUBLE_EQ(done3.seconds(), 11.0);
  EXPECT_DOUBLE_EQ(ch.bytes_carried(), 350.0);
}

TEST(SerialChannelTest, IdealDurationMatchesAlphaBeta) {
  SerialChannel ch(1e9, 1e-3);
  EXPECT_DOUBLE_EQ(ch.IdealDuration(1e9), 1.001);
  EXPECT_DOUBLE_EQ(ch.IdealDuration(0.0), 1e-3);
}

}  // namespace
}  // namespace laminar
