// Snapshot suite (DESIGN.md §13): LMSNAP1 byte-format round trips and
// tamper detection, the three-mode SnapshotTx contract, RNG state capture,
// full-system snapshots that are byte-identical across shard counts and
// invisible in run fingerprints, verify-mode restore with zero mismatches,
// and scripted kCrashRestart drills audited by the invariant checker.
#include "src/snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/laminar_system.h"
#include "src/core/run.h"
#include "src/fault/injector.h"
#include "src/verify/oracles.h"

namespace laminar {
namespace {

TEST(SnapshotFormatTest, WriterReaderRoundTripIsExact) {
  SnapshotWriter w;
  w.BeginSection("outer");
  w.U64("answer", 42);
  w.I64("debt", -7);
  w.F64("negzero", -0.0);
  w.F64("tiny", 1e-300);
  w.BeginSection("inner");
  w.Bytes("blob", std::string("nul\0nul", 7));
  w.EndSection();
  w.EndSection();
  std::string data = w.Finish();

  SnapshotReader r;
  std::string error;
  ASSERT_TRUE(r.Parse(data, &error)) << error;
  const std::vector<SnapshotRecord>& recs = r.records();
  ASSERT_EQ(recs.size(), 9u);
  EXPECT_EQ(recs[0].kind, SnapshotRecordKind::kSection);
  EXPECT_EQ(recs[0].name, "outer");
  EXPECT_EQ(recs[1].kind, SnapshotRecordKind::kU64);
  EXPECT_EQ(recs[1].u64, 42u);
  EXPECT_EQ(recs[2].kind, SnapshotRecordKind::kI64);
  EXPECT_EQ(static_cast<int64_t>(recs[2].u64), -7);
  // Doubles are bit-cast: -0.0 and denormal-adjacent values survive exactly.
  EXPECT_EQ(recs[3].u64, SnapshotF64Bits(-0.0));
  EXPECT_EQ(SnapshotBitsF64(recs[4].u64), 1e-300);
  EXPECT_EQ(recs[5].kind, SnapshotRecordKind::kSection);
  EXPECT_EQ(recs[6].kind, SnapshotRecordKind::kBytes);
  EXPECT_EQ(recs[6].bytes, std::string("nul\0nul", 7));
  EXPECT_EQ(recs[7].kind, SnapshotRecordKind::kEndSection);
  EXPECT_EQ(recs[8].kind, SnapshotRecordKind::kEndSection);
}

TEST(SnapshotFormatTest, ChecksumCatchesCorruptionAndTruncation) {
  SnapshotWriter w;
  w.U64("x", 123456789);
  w.Bytes("y", "payload");
  std::string data = w.Finish();

  SnapshotReader ok;
  std::string error;
  ASSERT_TRUE(ok.Parse(data, &error)) << error;

  // Flip one payload byte: the trailing FNV no longer matches.
  std::string corrupt = data;
  corrupt[corrupt.size() / 2] ^= 0x01;
  SnapshotReader r1;
  EXPECT_FALSE(r1.Parse(corrupt, &error));

  // Drop the tail: truncation is detected, not silently accepted.
  SnapshotReader r2;
  EXPECT_FALSE(r2.Parse(data.substr(0, data.size() - 3), &error));

  // Wrong magic and empty input both fail.
  std::string bad_magic = data;
  bad_magic[0] = 'X';
  SnapshotReader r3;
  EXPECT_FALSE(r3.Parse(bad_magic, &error));
  SnapshotReader r4;
  EXPECT_FALSE(r4.Parse("", &error));
}

// A toy component exercising every SnapshotTx field kind through the same
// traversal in all three modes.
struct ToyComponent {
  uint64_t counter = 0;
  int64_t balance = 0;
  double gauge = 0.0;
  bool armed = false;
  std::vector<double> series;
  uint64_t digest = 0;  // summary of unrestorable state

  void Snapshot(SnapshotTx& tx) {
    tx.Begin("toy");
    tx.U64("counter", &counter);
    tx.I64("balance", &balance);
    tx.F64("gauge", &gauge);
    tx.Bool("armed", &armed);
    tx.F64Vec("series", &series);
    tx.DigestU64("digest", digest);
    tx.End();
  }
};

TEST(SnapshotTxTest, VerifyReportsEveryMismatchWithoutChecking) {
  ToyComponent a{10, -5, 2.5, true, {1.0, 2.0}, 999};
  SnapshotWriter w;
  SnapshotTx wtx(&w);
  a.Snapshot(wtx);
  std::string blob = w.Finish();

  // Identical state verifies clean.
  SnapshotReader r1;
  std::string error;
  ASSERT_TRUE(r1.Parse(blob, &error)) << error;
  SnapshotTx v1(&r1, SnapshotMode::kVerify);
  ToyComponent same = a;
  same.Snapshot(v1);
  EXPECT_TRUE(v1.ok()) << v1.mismatches().front();

  // Three drifted fields -> three mismatches, each naming its field path.
  ToyComponent drifted = a;
  drifted.counter = 11;
  drifted.gauge = 3.5;
  drifted.digest = 1000;
  SnapshotReader r2;
  ASSERT_TRUE(r2.Parse(blob, &error)) << error;
  SnapshotTx v2(&r2, SnapshotMode::kVerify);
  drifted.Snapshot(v2);
  ASSERT_EQ(v2.mismatches().size(), 3u);
  EXPECT_NE(v2.mismatches()[0].find("counter"), std::string::npos);
  EXPECT_NE(v2.mismatches()[1].find("gauge"), std::string::npos);
  EXPECT_NE(v2.mismatches()[2].find("digest"), std::string::npos);
}

TEST(SnapshotTxTest, AdoptAssignsValuesAndSkipsDigests) {
  ToyComponent a{10, -5, 2.5, true, {1.0, 2.0, 3.0}, 999};
  SnapshotWriter w;
  SnapshotTx wtx(&w);
  a.Snapshot(wtx);
  std::string blob = w.Finish();

  ToyComponent b;  // all defaults
  b.digest = 7;
  SnapshotReader r;
  std::string error;
  ASSERT_TRUE(r.Parse(blob, &error)) << error;
  SnapshotTx adopt(&r, SnapshotMode::kAdopt);
  b.Snapshot(adopt);
  EXPECT_TRUE(adopt.ok());
  EXPECT_EQ(b.counter, 10u);
  EXPECT_EQ(b.balance, -5);
  EXPECT_EQ(b.gauge, 2.5);
  EXPECT_TRUE(b.armed);
  EXPECT_EQ(b.series, (std::vector<double>{1.0, 2.0, 3.0}));
  // Digest fields summarize unrestorable state: read-and-skipped on adopt.
  EXPECT_EQ(b.digest, 7u);
}

TEST(SnapshotTxTest, RngStateRoundTripsThroughAdopt) {
  Rng original(1234);
  original.Fork("warm-up");
  for (int i = 0; i < 17; ++i) {
    original.Uniform(0.0, 1.0);
  }
  SnapshotWriter w;
  SnapshotTx wtx(&w);
  original.Snapshot(wtx);
  std::string blob = w.Finish();

  // (seed, draws) is the complete RNG state: a fresh engine adopted from the
  // blob continues the draw stream bit-for-bit.
  Rng restored(999);
  SnapshotReader r;
  std::string error;
  ASSERT_TRUE(r.Parse(blob, &error)) << error;
  SnapshotTx adopt(&r, SnapshotMode::kAdopt);
  restored.Snapshot(adopt);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(original.NextU64(), restored.NextU64()) << "draw " << i;
  }
}

TEST(SnapshotFileTest, WarmStartFileRoundTripsAndRejectsTampering) {
  SnapshotFile file;
  file.scenario_text = "# laminar fuzz scenario v1\nseed=7\n";
  file.snapshot_at = 123.5;
  file.blob = std::string("inner\0blob", 10);
  std::string encoded = EncodeSnapshotFile(file);

  SnapshotFile back;
  std::string error;
  ASSERT_TRUE(DecodeSnapshotFile(encoded, &back, &error)) << error;
  EXPECT_EQ(back.scenario_text, file.scenario_text);
  EXPECT_EQ(back.snapshot_at, file.snapshot_at);
  EXPECT_EQ(back.blob, file.blob);

  std::string corrupt = encoded;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_FALSE(DecodeSnapshotFile(corrupt, &back, &error));
  EXPECT_FALSE(DecodeSnapshotFile("not a snapshot", &back, &error));
}

// ---------------------------------------------------------------------------
// Full-system coverage. Small enough to run in well under a second per run.

RlSystemConfig SnapConfig() {
  RlSystemConfig cfg;
  cfg.system = SystemKind::kLaminar;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 16;
  cfg.global_batch = 256;
  cfg.max_concurrency = 128;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 2;
  cfg.seed = 4321;
  cfg.invariants_enabled = true;
  cfg.ledger_enabled = true;
  cfg.trace.enabled = true;
  cfg.trace.ring_capacity = 0;
  return cfg;
}

TEST(SystemSnapshotTest, BlobIsByteIdenticalAcrossShardCounts) {
  RlSystemConfig base = SnapConfig();
  SystemReport probe = RunExperiment(base);
  ASSERT_GT(probe.simulated_seconds, 0.0);
  double t = 0.5 * probe.simulated_seconds;

  RlSystemConfig serial = base;
  serial.snapshot_at_seconds = t;
  SystemReport a = RunExperiment(serial);
  ASSERT_NE(a.snapshot, nullptr);
  ASSERT_FALSE(a.snapshot->empty());
  EXPECT_GT(a.snapshot_taken_at_seconds, 0.0);

  RlSystemConfig sharded = serial;
  sharded.shards = 4;
  SystemReport b = RunExperiment(sharded);
  ASSERT_NE(b.snapshot, nullptr);
  // The barrier lands between shard windows, so the sharded run pauses at
  // exactly the serial stop point and the blobs match byte for byte.
  EXPECT_EQ(*a.snapshot, *b.snapshot);
  EXPECT_EQ(a.snapshot_taken_at_seconds, b.snapshot_taken_at_seconds);
}

TEST(SystemSnapshotTest, SnapshotIsAnObservationNotAPerturbation) {
  RlSystemConfig base = SnapConfig();
  SystemReport plain = RunExperiment(base);
  RlSystemConfig snapped = base;
  snapped.snapshot_at_seconds = 0.5 * plain.simulated_seconds;
  SystemReport observed = RunExperiment(snapped);
  // Everything the determinism oracle hashes — reports, ledger, binary
  // trace — is unchanged by pausing to snapshot.
  EXPECT_EQ(RunFingerprint(plain), RunFingerprint(observed));
}

TEST(SystemSnapshotTest, VerifyAgainstOwnBlobReportsZeroMismatches) {
  RlSystemConfig base = SnapConfig();
  SystemReport probe = RunExperiment(base);
  RlSystemConfig first = base;
  first.snapshot_at_seconds = 0.4 * probe.simulated_seconds;
  SystemReport a = RunExperiment(first);
  ASSERT_NE(a.snapshot, nullptr);

  // A shard-flipped rerun re-reaches the barrier by deterministic replay and
  // verifies every field against the recorded blob: the restore path.
  RlSystemConfig second = first;
  second.shards = 4;
  second.snapshot_verify = a.snapshot;
  SystemReport b = RunExperiment(second);
  ASSERT_NE(b.snapshot, nullptr);
  EXPECT_EQ(*a.snapshot, *b.snapshot);
  EXPECT_TRUE(b.snapshot_mismatches.empty())
      << b.snapshot_mismatches.size() << " mismatches; first: "
      << b.snapshot_mismatches.front();
}

TEST(SystemSnapshotTest, VerifyAgainstForeignBlobNamesDriftedFields) {
  RlSystemConfig base = SnapConfig();
  SystemReport probe = RunExperiment(base);
  RlSystemConfig first = base;
  first.snapshot_at_seconds = 0.5 * probe.simulated_seconds;
  SystemReport a = RunExperiment(first);
  ASSERT_NE(a.snapshot, nullptr);

  // A different workload seed reaches a genuinely different state: the
  // verify pass must say so, field by field, instead of silently passing.
  RlSystemConfig drifted = first;
  drifted.seed = base.seed + 1;
  drifted.snapshot_verify = a.snapshot;
  SystemReport c = RunExperiment(drifted);
  EXPECT_FALSE(c.snapshot_mismatches.empty());
}

TEST(SystemSnapshotTest, ServingTierStateSnapshotsShardInvariantly) {
  // With the online serving tier armed (DESIGN.md §14) the blob additionally
  // captures the traffic generator's rng/clock, the manager's ticket table,
  // backlog, and latency histogram — and stays byte-identical across shard
  // counts, with a verify-mode restore reporting zero mismatches.
  RlSystemConfig base = SnapConfig();
  base.serving.enabled = true;
  base.serving.base_rate_per_sec = 2.0;
  base.serving.diurnal_amplitude = 0.6;
  base.serving.diurnal_period_seconds = 300.0;
  SystemReport probe = RunExperiment(base);
  ASSERT_GT(probe.serving_requests, 0);
  RlSystemConfig serial = base;
  serial.snapshot_at_seconds = 0.5 * probe.simulated_seconds;
  SystemReport a = RunExperiment(serial);
  ASSERT_NE(a.snapshot, nullptr);
  // The serving sections are actually present in the witness.
  EXPECT_NE(a.snapshot->find("serving_traffic"), std::string::npos);
  EXPECT_NE(a.snapshot->find("serving_latency_seconds"), std::string::npos);

  RlSystemConfig sharded = serial;
  sharded.shards = 4;
  sharded.snapshot_verify = a.snapshot;
  SystemReport b = RunExperiment(sharded);
  ASSERT_NE(b.snapshot, nullptr);
  EXPECT_EQ(*a.snapshot, *b.snapshot);
  EXPECT_TRUE(b.snapshot_mismatches.empty())
      << b.snapshot_mismatches.size() << " mismatches; first: "
      << b.snapshot_mismatches.front();

  // And with the tier off, no serving section leaks into the blob.
  EXPECT_EQ(probe.snapshot, nullptr);
  RlSystemConfig off = SnapConfig();
  off.snapshot_at_seconds = serial.snapshot_at_seconds;
  SystemReport c = RunExperiment(off);
  ASSERT_NE(c.snapshot, nullptr);
  EXPECT_EQ(c.snapshot->find("serving_traffic"), std::string::npos);
}

TEST(CrashRestartTest, ScriptedDrillRecoversAndPassesInvariants) {
  RlSystemConfig cfg = SnapConfig();
  SystemReport probe = RunExperiment(cfg);
  int target = cfg.warmup_iterations + cfg.measure_iterations;

  auto driver = MakeDriver(cfg);
  auto* sys = static_cast<LaminarSystem*>(driver.get());
  // Kill the trainer process mid-run; it restores from its last LMSNAP1
  // checkpoint and resumes after a 30 s restart.
  sys->ScheduleFault({0.4 * probe.simulated_seconds, FaultKind::kCrashRestart,
                      0, 30.0});
  SystemReport rep = driver->Run();
  EXPECT_EQ(rep.iterations_completed, target);
  EXPECT_GE(rep.faults_injected, 1);
  EXPECT_GT(rep.invariant_checks, 0);
  EXPECT_EQ(rep.invariant_violations, 0)
      << "crash-restart drill violated invariants";
  // The crash costs time: the run is strictly longer than the clean one.
  EXPECT_GT(rep.simulated_seconds, probe.simulated_seconds);
}

TEST(CrashRestartTest, DrillIsDeterministic) {
  RlSystemConfig cfg = SnapConfig();
  auto run_once = [&cfg]() {
    auto driver = MakeDriver(cfg);
    static_cast<LaminarSystem*>(driver.get())
        ->ScheduleFault({90.0, FaultKind::kCrashRestart, 0, 45.0});
    return driver->Run();
  };
  SystemReport a = run_once();
  SystemReport b = run_once();
  EXPECT_EQ(RunFingerprint(a), RunFingerprint(b));
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(CrashRestartTest, StochasticCrashChaosCompletesCleanly) {
  RlSystemConfig cfg = SnapConfig();
  cfg.chaos_enabled = true;
  cfg.chaos_seed = 77;
  cfg.chaos.start_seconds = 30.0;
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.chaos.crash_restart_per_hour = 60.0;
  cfg.chaos.crash_restart_recovery_seconds = 20.0;
  SystemReport rep = RunExperiment(cfg);
  EXPECT_EQ(rep.iterations_completed,
            cfg.warmup_iterations + cfg.measure_iterations);
  EXPECT_GE(rep.faults_injected, 1);
  EXPECT_EQ(rep.invariant_violations, 0);
}

TEST(CrashRestartTest, SnapshotAndCrashComposeShardInvariantly) {
  // The hardest composition: stochastic crash-restart chaos AND a snapshot
  // barrier, serial vs sharded — the blob and the fingerprint must both be
  // byte-identical.
  RlSystemConfig cfg = SnapConfig();
  cfg.chaos_enabled = true;
  cfg.chaos_seed = 91;
  cfg.chaos.start_seconds = 30.0;
  cfg.chaos.horizon_seconds = 3600.0;
  cfg.chaos.crash_restart_per_hour = 40.0;
  cfg.chaos.crash_restart_recovery_seconds = 25.0;
  SystemReport probe = RunExperiment(cfg);

  RlSystemConfig serial = cfg;
  serial.snapshot_at_seconds = 0.6 * probe.simulated_seconds;
  SystemReport a = RunExperiment(serial);
  ASSERT_NE(a.snapshot, nullptr);
  RlSystemConfig sharded = serial;
  sharded.shards = 4;
  sharded.snapshot_verify = a.snapshot;
  SystemReport b = RunExperiment(sharded);
  ASSERT_NE(b.snapshot, nullptr);
  EXPECT_EQ(*a.snapshot, *b.snapshot);
  EXPECT_TRUE(b.snapshot_mismatches.empty());
  EXPECT_EQ(RunFingerprint(a), RunFingerprint(b));
  EXPECT_EQ(RunFingerprint(a), RunFingerprint(probe));
}

}  // namespace
}  // namespace laminar
