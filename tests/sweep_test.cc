#include "src/exp/sweep.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/report_io.h"
#include "src/core/run.h"

namespace laminar {
namespace {

// Small-but-real configs spanning several drivers, cheap enough to run twice.
std::vector<RlSystemConfig> TestGrid() {
  std::vector<RlSystemConfig> grid;
  for (SystemKind system :
       {SystemKind::kVerlSync, SystemKind::kOneStep, SystemKind::kLaminar}) {
    for (int gpus : {16, 32}) {
      RlSystemConfig cfg;
      cfg.system = system;
      cfg.total_gpus = gpus;
      cfg.global_batch = 512;
      cfg.group_size = 8;
      cfg.num_minibatches = 4;
      cfg.max_concurrency = 128;
      cfg.warmup_iterations = 1;
      cfg.measure_iterations = 2;
      cfg.seed = 99;
      grid.push_back(cfg);
    }
  }
  return grid;
}

// Everything the report serializer can see, as one string — a byte-level
// fingerprint of the simulation outcome.
std::string Fingerprint(const SystemReport& rep) {
  return ReportSummaryCsv(rep) + IterationsCsv(rep) + SeriesCsv(rep) +
         StalenessCsv(rep);
}

TEST(SweepTest, EmptyGridReturnsEmpty) {
  EXPECT_TRUE(RunExperiments({}).empty());
}

TEST(SweepTest, ParallelMatchesSerialByteForByte) {
  std::vector<RlSystemConfig> grid = TestGrid();

  std::vector<std::string> serial;
  for (const RlSystemConfig& cfg : grid) {
    serial.push_back(Fingerprint(RunExperiment(cfg)));
  }

  // Force the parallel path even on single-core machines: oversubscribing
  // still exercises the work-claiming and cross-thread result placement.
  SweepOptions options;
  options.num_threads = 4;
  std::vector<SystemReport> reports = RunExperiments(grid, options);

  ASSERT_EQ(reports.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    // Submission order is preserved...
    EXPECT_EQ(reports[i].label, grid[i].Label()) << "config " << i;
    // ...and each report is bit-identical to its serial counterpart.
    EXPECT_EQ(Fingerprint(reports[i]), serial[i]) << "config " << i;
  }
}

TEST(SweepTest, RepeatedParallelRunsAreIdentical) {
  std::vector<RlSystemConfig> grid = TestGrid();
  SweepOptions options;
  options.num_threads = 3;
  std::vector<SystemReport> a = RunExperiments(grid, options);
  std::vector<SystemReport> b = RunExperiments(grid, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(Fingerprint(a[i]), Fingerprint(b[i])) << "config " << i;
  }
}

}  // namespace
}  // namespace laminar
