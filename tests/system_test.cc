// End-to-end integration tests: each driver runs a miniature RL job and the
// paper's qualitative properties hold.
#include <gtest/gtest.h>

#include "src/core/laminar_system.h"
#include "src/core/run.h"
#include "src/fault/injector.h"

namespace laminar {
namespace {

RlSystemConfig SmallConfig(SystemKind system) {
  RlSystemConfig cfg;
  cfg.system = system;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.max_concurrency = 256;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 2;
  cfg.seed = 1234;
  return cfg;
}

class AllSystemsTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(AllSystemsTest, CompletesIterationsWithSaneMetrics) {
  SystemReport rep = RunExperiment(SmallConfig(GetParam()));
  EXPECT_EQ(rep.iterations_completed, 3);
  EXPECT_GT(rep.throughput_tokens_per_sec, 0.0);
  EXPECT_GT(rep.mean_iteration_seconds, 0.0);
  // Token conservation: every iteration consumed exactly one global batch.
  for (const IterationStats& it : rep.iterations) {
    EXPECT_GT(it.tokens, 512.0 * 300);   // at least min-length trajectories
    EXPECT_LT(it.tokens, 512.0 * 20000);  // bounded by prompt+output caps
  }
  EXPECT_GE(rep.avg_kv_utilization, 0.0);
  EXPECT_LE(rep.avg_kv_utilization, 1.0);
  EXPECT_GT(rep.simulated_events, 100u);
}

TEST_P(AllSystemsTest, DeterministicAcrossRuns) {
  SystemReport a = RunExperiment(SmallConfig(GetParam()));
  SystemReport b = RunExperiment(SmallConfig(GetParam()));
  EXPECT_DOUBLE_EQ(a.throughput_tokens_per_sec, b.throughput_tokens_per_sec);
  EXPECT_DOUBLE_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

INSTANTIATE_TEST_SUITE_P(Systems, AllSystemsTest,
                         ::testing::Values(SystemKind::kVerlSync, SystemKind::kOneStep,
                                           SystemKind::kStreamGen,
                                           SystemKind::kPartialRollout,
                                           SystemKind::kLaminar),
                         [](const auto& info) {
                           std::string name = SystemKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(SyncSystemTest, OnPolicyAndGenerationDominated) {
  SystemReport rep = RunExperiment(SmallConfig(SystemKind::kVerlSync));
  EXPECT_DOUBLE_EQ(rep.mean_consume_staleness, 0.0);
  EXPECT_DOUBLE_EQ(rep.mixed_version_fraction, 0.0);
  // Figure 1(b): generation dominates the iteration.
  EXPECT_GT(rep.generation_fraction, 0.4);
}

TEST(OneStepTest, StalenessIsExactlyBoundedByOne) {
  SystemReport rep = RunExperiment(SmallConfig(SystemKind::kOneStep));
  EXPECT_LE(rep.max_consume_staleness, 1.0);
  EXPECT_GT(rep.mean_consume_staleness, 0.0);
  EXPECT_DOUBLE_EQ(rep.mixed_version_fraction, 0.0);
}

TEST(StreamGenTest, ConsumesCurrentBatchNoStaleness) {
  SystemReport rep = RunExperiment(SmallConfig(SystemKind::kStreamGen));
  // Stream generation trains on the in-flight batch (staleness bound 1 means
  // data is at most from the current generation round).
  EXPECT_LE(rep.max_consume_staleness, 1.0);
  EXPECT_DOUBLE_EQ(rep.mixed_version_fraction, 0.0);
}

TEST(PartialRolloutTest, ProducesMixedVersionTrajectories) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kPartialRollout);
  cfg.measure_iterations = 4;
  SystemReport rep = RunExperiment(cfg);
  EXPECT_GT(rep.mixed_version_fraction, 0.0);
  // Interruptions force rollout waiting at every publish.
  EXPECT_GT(rep.rollout_wait_mean_seconds, 0.0);
}

TEST(LaminarTest, TrajectoryLevelAsynchronyProperties) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.measure_iterations = 4;
  SystemReport rep = RunExperiment(cfg);
  // Single consistent policy version per trajectory — never mixed.
  EXPECT_DOUBLE_EQ(rep.mixed_version_fraction, 0.0);
  // Inherent staleness stays small without any explicit bound (Figure 10).
  EXPECT_LE(rep.max_inherent_staleness, 6.0);
  EXPECT_GT(rep.rollout_busy_fraction, 0.8);
  // The actor's publish stall is far below a global sync.
  EXPECT_LT(rep.actor_stall_mean_seconds, 0.5);
}

TEST(LaminarTest, BeatsLockstepBaselinesAtScale) {
  RlSystemConfig cfg;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 64;
  cfg.global_batch = 2048;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 2;
  cfg.system = SystemKind::kLaminar;
  double laminar = RunExperiment(cfg).throughput_tokens_per_sec;
  cfg.system = SystemKind::kVerlSync;
  double verl = RunExperiment(cfg).throughput_tokens_per_sec;
  cfg.system = SystemKind::kOneStep;
  double one_step = RunExperiment(cfg).throughput_tokens_per_sec;
  EXPECT_GT(laminar, verl);
  EXPECT_GT(laminar, one_step);
}

TEST(LaminarTest, RepackImprovesThroughputAndKvUtilization) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.total_gpus = 32;
  cfg.global_batch = 1024;
  cfg.measure_iterations = 3;
  SystemReport with = RunExperiment(cfg);
  cfg.repack_enabled = false;
  SystemReport without = RunExperiment(cfg);
  EXPECT_GT(with.repack_events, 0);
  EXPECT_GT(with.repack_sources_released, 0);
  EXPECT_EQ(without.repack_events, 0);
  // Table 1's direction: higher KV utilization with repack.
  EXPECT_GE(with.avg_kv_utilization, without.avg_kv_utilization * 0.98);
  EXPECT_GE(with.throughput_tokens_per_sec, without.throughput_tokens_per_sec * 0.95);
}

TEST(LaminarTest, SurvivesRolloutMachineFailure) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.measure_iterations = 4;
  auto driver = MakeDriver(cfg);
  auto* laminar = static_cast<LaminarSystem*>(driver.get());
  // Kill rollout machine 0 shortly into the run; the manager must redirect
  // its in-flight work and schedule a replacement.
  laminar->sim().ScheduleAt(SimTime(40.0), [laminar] {
    laminar->heartbeats()->MarkDead(0);
  });
  SystemReport rep = driver->Run();
  EXPECT_EQ(rep.iterations_completed, 5);
  EXPECT_GT(laminar->manager()->stats().failures_handled, 0);
  EXPECT_GT(laminar->manager()->stats().trajectories_redirected, 0);
}

TEST(LaminarTest, SurvivesTrainerFailure) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.measure_iterations = 3;
  auto driver = MakeDriver(cfg);
  auto* laminar = static_cast<LaminarSystem*>(driver.get());
  laminar->sim().ScheduleAt(SimTime(60.0), [laminar] {
    laminar->trainer().Kill(/*recovery_seconds=*/45.0);
  });
  SystemReport rep = driver->Run();
  EXPECT_EQ(rep.iterations_completed, 4);
}

TEST(LaminarTest, SurvivesMasterRelayFailure) {
  // 7B/64 gives Laminar 24 rollout GPUs = 3 machines, so a master failure
  // has survivors to elect from.
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.total_gpus = 64;
  cfg.global_batch = 1024;
  cfg.measure_iterations = 3;
  auto driver = MakeDriver(cfg);
  auto* laminar = static_cast<LaminarSystem*>(driver.get());
  laminar->sim().ScheduleAt(SimTime(30.0), [laminar] {
    laminar->heartbeats()->MarkDead(laminar->relays()->master());
  });
  SystemReport rep = driver->Run();
  EXPECT_EQ(rep.iterations_completed, 4);
  EXPECT_GE(laminar->relays()->master_elections(), 1);
}

TEST(ToolCallingTest, MultiTurnTaskRunsOnLaminarAndVerl) {
  for (SystemKind system : {SystemKind::kLaminar, SystemKind::kVerlSync}) {
    RlSystemConfig cfg = SmallConfig(system);
    cfg.task = TaskKind::kToolCalling;
    cfg.measure_iterations = 2;
    SystemReport rep = RunExperiment(cfg);
    EXPECT_EQ(rep.iterations_completed, 3) << SystemKindName(system);
    EXPECT_GT(rep.throughput_tokens_per_sec, 0.0);
  }
}

TEST(SamplerTest, AllSamplerKindsWork) {
  for (SamplerKind sampler :
       {SamplerKind::kFifo, SamplerKind::kFreshness, SamplerKind::kStalenessCapped}) {
    RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
    cfg.sampler = sampler;
    SystemReport rep = RunExperiment(cfg);
    EXPECT_EQ(rep.iterations_completed, 3);
  }
}

TEST(LaminarTest, AppendixCPartialRolloutHybrid) {
  // The Appendix-C discussion: partial rollout can be grafted onto Laminar.
  // In-flight trajectories then adopt fresh versions (mixed-version data
  // appears), trading data purity for even lower staleness.
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.laminar_partial_rollout = true;
  cfg.measure_iterations = 4;
  SystemReport rep = RunExperiment(cfg);
  EXPECT_EQ(rep.iterations_completed, 5);
  EXPECT_GT(rep.mixed_version_fraction, 0.0);
  SystemReport plain = RunExperiment(SmallConfig(SystemKind::kLaminar));
  EXPECT_DOUBLE_EQ(plain.mixed_version_fraction, 0.0);
}

TEST(StaticThresholdAblationTest, Runs) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.repack_static_threshold = true;
  SystemReport rep = RunExperiment(cfg);
  EXPECT_EQ(rep.iterations_completed, 3);
}

TEST(RewardProgressTest, LaminarLearnsOverIterations) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.warmup_iterations = 0;
  cfg.measure_iterations = 12;
  cfg.global_batch = 768;
  SystemReport rep = RunExperiment(cfg);
  ASSERT_GE(rep.reward_series.size(), 10u);
  double first = rep.reward_series.points().front().value;
  double last = rep.reward_series.points().back().value;
  EXPECT_GT(last, first);
}

TEST(LengthDriftTest, SystemHandlesEvolvingLengths) {
  RlSystemConfig cfg = SmallConfig(SystemKind::kLaminar);
  cfg.length_drift = true;
  SystemReport rep = RunExperiment(cfg);
  EXPECT_EQ(rep.iterations_completed, 3);
}

}  // namespace
}  // namespace laminar
