// Golden-trace timeline tests: the paper's headline *timing* claims asserted
// against captured traces with the TraceQuery operators instead of aggregate
// report tables. Each test runs a miniature experiment with tracing on and
// interrogates span overlap, coverage gaps and happens-before chains.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/laminar_system.h"
#include "src/core/run.h"
#include "src/trace/query.h"
#include "src/trace/trace_io.h"

namespace laminar {
namespace {

RlSystemConfig SmallTraced(SystemKind system) {
  RlSystemConfig cfg;
  cfg.system = system;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.max_concurrency = 256;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 4;
  cfg.seed = 1234;
  cfg.trace.enabled = true;
  return cfg;
}

TraceSelector Named(const char* name) { return TraceSelector().Name(name); }

// --- Figure 1: the synchronous bubble and its asynchronous closure -----------

// In the lockstep verl baseline the trainer idles for the whole generation
// phase of every iteration: its wait-for-data span dominates the training
// span (Figure 1a's bubble).
TEST(TimelineTest, SyncModeHasTrainerBubble) {
  SystemReport rep = RunExperiment(SmallTraced(SystemKind::kVerlSync));
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);
  std::vector<TraceEvent> waits = query.Spans(Named("trainer/wait_data"));
  std::vector<TraceEvent> trains = query.Spans(Named("trainer/train"));
  ASSERT_EQ(waits.size(), 5u);
  ASSERT_EQ(trains.size(), 5u);
  double mean_train = TotalSeconds(trains) / trains.size();
  for (const TraceEvent& wait : waits) {
    // Every iteration stalls the trainer for longer than the training step
    // itself — generation dominates (Figure 1b).
    EXPECT_GT(wait.duration, mean_train);
  }
}

// Laminar's trajectory-level asynchrony closes the bubble: once the pipeline
// is warm, the experience buffer always has a batch ready, so the trainer's
// wait-for-data span is a small fraction of the training span and the
// training spans cover the timeline with no long uncovered gap while
// rollouts are still streaming in.
TEST(TimelineTest, AsyncModeClosesTrainerBubble) {
  SystemReport rep = RunExperiment(SmallTraced(SystemKind::kLaminar));
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);
  std::vector<TraceEvent> waits = query.Spans(Named("trainer/wait_data"));
  std::vector<TraceEvent> trains = query.Spans(Named("trainer/train"));
  ASSERT_EQ(waits.size(), 5u);
  ASSERT_EQ(trains.size(), 5u);
  double mean_train = TotalSeconds(trains) / trains.size();
  // Iteration 0 fills the empty buffer and legitimately waits; after that
  // the trainer is never starved for even half a training step.
  for (size_t i = 1; i < waits.size(); ++i) {
    EXPECT_LT(waits[i].duration, 0.5 * mean_train) << "iteration " << i;
  }
  // Coverage form of the same claim: from the first post-warm training span
  // to the last, training activity covers the trainer's timeline with no
  // gap longer than half a step (the gaps are exactly the wait + publish
  // stall phases).
  std::vector<TraceEvent> warm(trains.begin() + 1, trains.end());
  double gap = MaxUncoveredGap(warm, warm.front().time, warm.back().end());
  EXPECT_LT(gap, 0.5 * mean_train);
}

// --- Figure 7/12: weight distribution overlaps generation --------------------

// The relay tier streams new weights while replicas keep decoding: the
// broadcast spans must overlap replica busy spans rather than pausing them
// (in verl the cluster stops decoding to sync; in Laminar it never does).
TEST(TimelineTest, RelayBroadcastOverlapsDecode) {
  SystemReport rep = RunExperiment(SmallTraced(SystemKind::kLaminar));
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);
  std::vector<TraceEvent> bcasts =
      query.Spans(TraceSelector().Component(TraceComponent::kRelay).Name("relay/broadcast"));
  std::vector<TraceEvent> busy = query.Spans(
      TraceSelector().Component(TraceComponent::kReplica).Name("replica/decode_busy"));
  ASSERT_FALSE(bcasts.empty());
  ASSERT_FALSE(busy.empty());
  // The spans must describe real intervals (a zero-length span here would
  // make the overlap check below pass vacuously).
  ASSERT_GT(UnionSeconds(bcasts), 0.0);
  ASSERT_GT(UnionSeconds(busy), 0.0);
  // Nearly all broadcast time coincides with at least one replica decoding.
  double overlap = OverlapSeconds(bcasts, busy);
  EXPECT_GT(overlap, 0.9 * UnionSeconds(bcasts));
  // And replicas pull the new version without pausing: every pull-wait span
  // lies inside some decode-busy interval union too.
  std::vector<TraceEvent> pulls = query.Spans(Named("relay/pull_wait"));
  if (!pulls.empty()) {
    EXPECT_GT(OverlapSeconds(pulls, busy), 0.5 * UnionSeconds(pulls));
  }
}

// --- Figure 15: machine failure, redirect, replacement -----------------------

TEST(TimelineTest, MachineFailureRecoversWithinDocumentedWindow) {
  // 7B/64 gives Laminar three rollout machines, so machine 0's in-flight
  // work has surviving hosts to be redirected to.
  RlSystemConfig cfg = SmallTraced(SystemKind::kLaminar);
  cfg.total_gpus = 64;
  cfg.global_batch = 1024;
  // Enough iterations (~360 simulated seconds) for the ~245 s replacement
  // pipeline to complete inside the run.
  cfg.measure_iterations = 10;
  auto driver = MakeDriver(cfg);
  auto* laminar = static_cast<LaminarSystem*>(driver.get());
  FaultEvent kill;
  kill.at_seconds = 30.0;
  kill.kind = FaultKind::kRolloutMachine;
  kill.target = 0;
  laminar->ScheduleFault(kill);
  SystemReport rep = driver->Run();
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);

  // Causal chain: injected fault -> manager handles the dead machine ->
  // replacement machine admitted. Happens-before is emission order, so this
  // holds even where timestamps coincide.
  EXPECT_TRUE(query.HappensBefore(Named("fault/rollout-machine"),
                                  Named("manager/machine_failure")));
  EXPECT_TRUE(query.HappensBefore(Named("manager/machine_failure"),
                                  Named("manager/machine_replaced")));

  std::vector<TraceEvent> failures = query.Instants(Named("manager/machine_failure"));
  std::vector<TraceEvent> replaced = query.Instants(Named("manager/machine_replaced"));
  ASSERT_EQ(failures.size(), 1u);
  ASSERT_EQ(replaced.size(), 1u);
  // The manager reacts via heartbeat loss within its detection window...
  EXPECT_GE(failures[0].time, 30.0);
  EXPECT_LT(failures[0].time, 30.0 + 20.0);
  // ...and the replacement joins after machine allocation (210 s) plus
  // replica init (35 s), with a little scheduling slack — the paper's ~250 s
  // recovery (§8.5, Figure 15).
  double recovery = replaced[0].time - failures[0].time;
  EXPECT_GE(recovery, 210.0);
  EXPECT_LE(recovery, 210.0 + 35.0 + 15.0);
  // The work the dead machine held was redirected before the replacement
  // arrived, not regenerated after it.
  EXPECT_TRUE(query.HappensBefore(Named("manager/redirect"),
                                  Named("manager/machine_replaced")));
}

// --- Fail-slow detection: quarantine and re-admission ------------------------

TEST(TimelineTest, QuarantinedReplicaIsReadmittedAfterSlownessClears) {
  RlSystemConfig cfg = SmallTraced(SystemKind::kLaminar);
  cfg.measure_iterations = 6;
  auto driver = MakeDriver(cfg);
  auto* laminar = static_cast<LaminarSystem*>(driver.get());
  FaultEvent slow;
  slow.at_seconds = 40.0;
  slow.kind = FaultKind::kReplicaSlow;
  slow.target = 0;
  slow.duration_seconds = 150.0;
  slow.severity = 0.25;
  laminar->ScheduleFault(slow);
  SystemReport rep = driver->Run();
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);

  EXPECT_TRUE(
      query.HappensBefore(Named("fault/replica-slow"), Named("fault/slow_detect")));
  EXPECT_TRUE(
      query.HappensBefore(Named("fault/slow_detect"), Named("manager/quarantine")));
  EXPECT_TRUE(
      query.HappensBefore(Named("manager/quarantine"), Named("manager/quarantine_lift")));

  std::vector<TraceEvent> quarantines =
      query.Instants(TraceSelector().Name("manager/quarantine").Entity(0));
  std::vector<TraceEvent> lifts =
      query.Instants(TraceSelector().Name("manager/quarantine_lift").Entity(0));
  ASSERT_FALSE(quarantines.empty());
  ASSERT_FALSE(lifts.empty());
  // Quarantine engages while the replica is actually slow...
  EXPECT_GE(quarantines[0].time, 40.0);
  EXPECT_LT(quarantines[0].time, 40.0 + 150.0);
  // ...and is lifted within a detection window of the slowness clearing at
  // t = 190: the replica rejoins instead of being written off.
  EXPECT_GE(lifts.back().time, quarantines[0].time);
  EXPECT_LE(lifts.back().time, 40.0 + 150.0 + 60.0);
}

// --- Trace accounting crosschecks -------------------------------------------

// The trace must agree with the aggregate report it complements: one
// publish instant and one iteration span per completed iteration.
TEST(TimelineTest, TraceAgreesWithAggregateReport) {
  SystemReport rep = RunExperiment(SmallTraced(SystemKind::kLaminar));
  ASSERT_NE(rep.trace, nullptr);
  TraceQuery query(*rep.trace);
  EXPECT_EQ(query.Instants(Named("trainer/publish")).size(),
            static_cast<size_t>(rep.iterations_completed));
  std::vector<TraceEvent> iterations = query.Spans(Named("trainer/iteration"));
  ASSERT_EQ(iterations.size(), static_cast<size_t>(rep.iterations_completed));
  // Span payloads carry the consumed tokens; their sum is the report's total.
  double tokens = 0.0;
  for (const TraceEvent& it : iterations) {
    tokens += it.value;
  }
  double reported = 0.0;
  for (const IterationStats& it : rep.iterations) {
    reported += it.tokens;
  }
  EXPECT_DOUBLE_EQ(tokens, reported);
  // Every event lies inside the simulated horizon.
  EXPECT_LE(query.EndTime(), rep.simulated_seconds + 1e-9);
}

}  // namespace
}  // namespace laminar
