// Unit tests for the structured tracing subsystem (src/trace): buffer and
// ring-eviction semantics, sink emission + macro no-op guarantees, binary and
// Chrome-JSON export round-trips, the TraceQuery operators and interval
// algebra, the metrics registry, and byte-level trace determinism across
// sweep thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/run.h"
#include "src/exp/sweep.h"
#include "src/sim/simulator.h"
#include "src/trace/metrics.h"
#include "src/trace/query.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"

namespace laminar {
namespace {

TraceEvent MakeSpan(double begin, double dur, uint32_t name = 0, int32_t entity = -1) {
  TraceEvent e;
  e.time = begin;
  e.duration = dur;
  e.name = name;
  e.entity = entity;
  e.kind = TraceEventKind::kSpan;
  return e;
}

// --- TraceBuffer -------------------------------------------------------------

TEST(TraceBufferTest, InternsNamesInFirstUseOrder) {
  TraceBuffer buffer;
  uint32_t a = buffer.InternName("alpha");
  uint32_t b = buffer.InternName("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  // Repeat interning returns the existing id.
  EXPECT_EQ(buffer.InternName("alpha"), a);
  EXPECT_EQ(buffer.names().size(), 2u);
  EXPECT_EQ(buffer.name(a), "alpha");
  uint32_t found = 99;
  EXPECT_TRUE(buffer.FindName("beta", &found));
  EXPECT_EQ(found, b);
  EXPECT_FALSE(buffer.FindName("never-emitted", &found));
}

TEST(TraceBufferTest, FullCaptureKeepsEverything) {
  TraceBuffer buffer;
  for (int i = 0; i < 100; ++i) {
    TraceEvent e;
    e.time = i;
    e.arg = i;
    buffer.Add(e);
  }
  EXPECT_EQ(buffer.size(), 100u);
  EXPECT_EQ(buffer.total_emitted(), 100u);
  EXPECT_EQ(buffer.dropped(), 0u);
  std::vector<TraceEvent> events = buffer.InOrder();
  ASSERT_EQ(events.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(events[i].arg, i);
  }
}

TEST(TraceBufferTest, RingModeEvictsOldestAndCountsDrops) {
  TraceBuffer ring(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.arg = i;
    ring.Add(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.ring_capacity(), 4u);
  // The survivors are the newest four, still in emission order.
  std::vector<TraceEvent> events = ring.InOrder();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg, 6 + i);
  }
}

TEST(TraceBufferTest, RingModeExactlyFullDropsNothing) {
  TraceBuffer ring(5);
  for (int i = 0; i < 5; ++i) {
    TraceEvent e;
    e.arg = i;
    ring.Add(e);
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> events = ring.InOrder();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].arg, i);
  }
}

// --- TraceSink + macros ------------------------------------------------------

TEST(TraceSinkTest, StampsEventsWithSimulatorTime) {
  Simulator sim;
  TraceConfig config;
  config.enabled = true;
  TraceSink sink(&sim, config);
  sim.set_trace(&sink);

  sim.ScheduleAt(SimTime(2.0), [&] {
    LAMINAR_TRACE_INSTANT(&sim, TraceComponent::kTrainer, "t/pub", -1, 7);
  });
  sim.ScheduleAt(SimTime(5.0), [&] {
    LAMINAR_TRACE_SPAN(&sim, TraceComponent::kReplica, "r/busy", 3, SimTime(4.0), 0, 1.5);
  });
  sim.ScheduleAt(SimTime(6.0), [&] {
    LAMINAR_TRACE_COUNTER(&sim, TraceComponent::kData, "d/depth", -1, 42.0);
  });
  sim.RunUntilIdle();

  std::vector<TraceEvent> events = sink.buffer().InOrder();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kInstant);
  EXPECT_DOUBLE_EQ(events[0].time, 2.0);
  EXPECT_EQ(events[0].arg, 7);
  EXPECT_EQ(sink.buffer().name(events[0].name), "t/pub");

  EXPECT_EQ(events[1].kind, TraceEventKind::kSpan);
  EXPECT_DOUBLE_EQ(events[1].time, 4.0);        // caller-supplied begin
  EXPECT_DOUBLE_EQ(events[1].duration, 1.0);    // closed at Now() = 5
  EXPECT_DOUBLE_EQ(events[1].end(), 5.0);
  EXPECT_EQ(events[1].entity, 3);
  EXPECT_DOUBLE_EQ(events[1].value, 1.5);

  EXPECT_EQ(events[2].kind, TraceEventKind::kCounter);
  EXPECT_DOUBLE_EQ(events[2].value, 42.0);
}

TEST(TraceSinkTest, RetroactiveSpanTakesExplicitEnd) {
  Simulator sim;
  TraceConfig config;
  config.enabled = true;
  TraceSink sink(&sim, config);
  sim.set_trace(&sink);
  // Emitted at t=10 but describing [1, 3): the pattern the trainer uses for
  // per-iteration phase spans reconstructed after the fact.
  sim.ScheduleAt(SimTime(10.0), [&] {
    LAMINAR_TRACE_SPAN_AT(&sim, TraceComponent::kTrainer, "t/train", -1, SimTime(1.0),
                          SimTime(3.0), 5);
  });
  sim.RunUntilIdle();
  std::vector<TraceEvent> events = sink.buffer().InOrder();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_DOUBLE_EQ(events[0].duration, 2.0);
  EXPECT_EQ(events[0].arg, 5);
}

TEST(TraceMacroTest, DisabledTracingSkipsArgumentEvaluation) {
  Simulator sim;
  ASSERT_EQ(sim.trace(), nullptr);
  // The macros must compile to a null test only: argument expressions carry
  // side effects here and none may fire. This is the semantic half of the
  // "zero overhead when disabled" guarantee (the perf half is the
  // bench_sim_core delta guard in the README verify recipe).
  int evaluations = 0;
  auto touch = [&](int32_t v) {
    ++evaluations;
    return v;
  };
  LAMINAR_TRACE_INSTANT(&sim, TraceComponent::kTrainer, "t/pub", touch(1));
  LAMINAR_TRACE_SPAN(&sim, TraceComponent::kReplica, "r/busy", touch(2), SimTime(0.0));
  LAMINAR_TRACE_SPAN_AT(&sim, TraceComponent::kReplica, "r/busy", touch(3), SimTime(0.0),
                        SimTime(1.0));
  LAMINAR_TRACE_COUNTER(&sim, TraceComponent::kData, "d/depth", touch(4), 1.0);
  EXPECT_EQ(evaluations, 0);
}

// --- Export round-trips ------------------------------------------------------

TraceBuffer BuildSampleBuffer(size_t ring_capacity = 0) {
  Simulator sim;
  TraceConfig config;
  config.enabled = true;
  config.ring_capacity = ring_capacity;
  TraceSink sink(&sim, config);
  sim.set_trace(&sink);
  for (int i = 0; i < 20; ++i) {
    sim.ScheduleAt(SimTime(0.5 * i), [&sim, i] {
      switch (i % 3) {
        case 0:
          LAMINAR_TRACE_INSTANT(&sim, TraceComponent::kTrainer, "trainer/publish", -1, i);
          break;
        case 1:
          LAMINAR_TRACE_SPAN(&sim, TraceComponent::kReplica, "replica/decode_busy", i % 4,
                             sim.Now() - 0.25, i, 0.125 * i);
          break;
        default:
          LAMINAR_TRACE_COUNTER(&sim, TraceComponent::kData, "data/buffer_depth", -1,
                                3.0 * i);
      }
    });
  }
  sim.RunUntilIdle();
  // Copy out: TraceBuffer is a value type.
  return *sink.shared_buffer();
}

TEST(TraceIoTest, BinaryRoundTripIsExact) {
  TraceBuffer original = BuildSampleBuffer();
  std::string bytes = TraceToBinary(original);
  TraceBuffer restored;
  ASSERT_TRUE(TraceFromBinary(bytes, &restored));
  EXPECT_EQ(restored.names(), original.names());
  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.dropped(), original.dropped());
  std::vector<TraceEvent> a = original.InOrder();
  std::vector<TraceEvent> b = restored.InOrder();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
    EXPECT_EQ(a[i].arg, b[i].arg);
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].entity, b[i].entity);
    EXPECT_EQ(a[i].component, b[i].component);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
  // Serialize-parse-serialize is byte-stable.
  EXPECT_EQ(TraceToBinary(restored), bytes);
}

TEST(TraceIoTest, BinaryRoundTripPreservesRingDropCount) {
  TraceBuffer ring = BuildSampleBuffer(/*ring_capacity=*/8);
  ASSERT_GT(ring.dropped(), 0u);
  std::string bytes = TraceToBinary(ring);
  TraceBuffer restored;
  ASSERT_TRUE(TraceFromBinary(bytes, &restored));
  EXPECT_EQ(restored.dropped(), ring.dropped());
  EXPECT_EQ(restored.total_emitted(), ring.total_emitted());
}

TEST(TraceIoTest, RejectsMalformedBinary) {
  TraceBuffer out;
  EXPECT_FALSE(TraceFromBinary("", &out));
  EXPECT_FALSE(TraceFromBinary("NOTATRACE", &out));
  std::string good = TraceToBinary(BuildSampleBuffer());
  // Any truncation must be detected, not silently accepted.
  for (size_t cut : {good.size() - 1, good.size() / 2, size_t{9}}) {
    EXPECT_FALSE(TraceFromBinary(good.substr(0, cut), &out)) << "cut=" << cut;
  }
  // Corrupt the magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(TraceFromBinary(bad_magic, &out));
}

TEST(TraceIoTest, ChromeJsonHasOneRecordPerEventPlusMetadata) {
  TraceBuffer buffer = BuildSampleBuffer();
  std::string json = TraceToChromeJson(buffer);
  auto count = [&](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  std::vector<TraceEvent> events = buffer.InOrder();
  size_t spans = 0, instants = 0, counters = 0;
  for (const TraceEvent& e : events) {
    spans += e.kind == TraceEventKind::kSpan;
    instants += e.kind == TraceEventKind::kInstant;
    counters += e.kind == TraceEventKind::kCounter;
  }
  EXPECT_EQ(count("\"ph\":\"X\""), spans);
  EXPECT_EQ(count("\"ph\":\"i\""), instants);
  EXPECT_EQ(count("\"ph\":\"C\""), counters);
  EXPECT_EQ(count("\"ph\":\"M\""), static_cast<size_t>(kNumTraceComponents));
  // Every interned name appears, quoted, and the document is brace-balanced
  // (no quoting subtleties: event names contain no braces or quotes).
  for (const std::string& name : buffer.names()) {
    EXPECT_GE(count("\"name\":\"" + name + "\""), 1u) << name;
  }
  EXPECT_EQ(count("{"), count("}"));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the root
}

TEST(TraceIoTest, ChromeJsonEscapesNames) {
  TraceBuffer buffer;
  TraceEvent e;
  e.name = buffer.InternName("weird\"name\\with");
  buffer.Add(e);
  std::string json = TraceToChromeJson(buffer);
  EXPECT_NE(json.find("weird\\\"name\\\\with"), std::string::npos);
}

// --- TraceQuery --------------------------------------------------------------

class TraceQueryTest : public ::testing::Test {
 protected:
  TraceQueryTest() {
    TraceConfig config;
    config.enabled = true;
    sink_ = std::make_unique<TraceSink>(&sim_, config);
    sim_.set_trace(sink_.get());
    // A small scripted timeline:
    //   t=1 instant  trainer/publish arg=1
    //   t=2 counter  data/depth = 4
    //   t=5 span     replica/busy entity 0 over [3, 5)
    //   t=6 counter  data/depth = 10
    //   t=7 span     replica/busy entity 1 over [6, 7)
    //   t=8 instant  trainer/publish arg=2
    //   t=9 span     trainer/train over [2, 9)   (retroactive: emitted last,
    //                                             earliest begin)
    sim_.ScheduleAt(SimTime(1.0), [this] {
      LAMINAR_TRACE_INSTANT(&sim_, TraceComponent::kTrainer, "trainer/publish", -1, 1);
    });
    sim_.ScheduleAt(SimTime(2.0), [this] {
      LAMINAR_TRACE_COUNTER(&sim_, TraceComponent::kData, "data/depth", -1, 4.0);
    });
    sim_.ScheduleAt(SimTime(5.0), [this] {
      LAMINAR_TRACE_SPAN(&sim_, TraceComponent::kReplica, "replica/busy", 0, SimTime(3.0));
    });
    sim_.ScheduleAt(SimTime(6.0), [this] {
      LAMINAR_TRACE_COUNTER(&sim_, TraceComponent::kData, "data/depth", -1, 10.0);
    });
    sim_.ScheduleAt(SimTime(7.0), [this] {
      LAMINAR_TRACE_SPAN(&sim_, TraceComponent::kReplica, "replica/busy", 1, SimTime(6.0));
    });
    sim_.ScheduleAt(SimTime(8.0), [this] {
      LAMINAR_TRACE_INSTANT(&sim_, TraceComponent::kTrainer, "trainer/publish", -1, 2);
    });
    sim_.ScheduleAt(SimTime(9.0), [this] {
      LAMINAR_TRACE_SPAN_AT(&sim_, TraceComponent::kTrainer, "trainer/train", -1,
                            SimTime(2.0), SimTime(9.0));
    });
    sim_.RunUntilIdle();
    query_ = std::make_unique<TraceQuery>(sink_->buffer());
  }

  Simulator sim_;
  std::unique_ptr<TraceSink> sink_;
  std::unique_ptr<TraceQuery> query_;
};

TEST_F(TraceQueryTest, SelectsByComponentNameEntityAndWindow) {
  EXPECT_EQ(query_->Events(TraceSelector()).size(), 7u);
  EXPECT_EQ(query_->Events(TraceSelector().Component(TraceComponent::kTrainer)).size(), 3u);
  EXPECT_EQ(query_->Events(TraceSelector().Name("trainer/publish")).size(), 2u);
  EXPECT_EQ(query_->Events(TraceSelector().Name("no/such/event")).size(), 0u);
  EXPECT_EQ(query_->Events(TraceSelector().Entity(1)).size(), 1u);
  // Window selects instants in [after, before)...
  EXPECT_EQ(query_->Instants(TraceSelector().Window(1.0, 8.0)).size(), 1u);
  // ...and spans that *intersect* it: [2,9) and [6,7) intersect (5.5, 6.5);
  // [3,5) ended before the window opens and is excluded.
  EXPECT_EQ(query_->Spans(TraceSelector().Window(5.5, 6.5)).size(), 2u);
  EXPECT_EQ(query_->Spans(TraceSelector().Window(4.9, 6.5)).size(), 3u);
  EXPECT_EQ(query_->Spans(TraceSelector().Window(0.0, 1.0)).size(), 0u);
}

TEST_F(TraceQueryTest, SpansSortByBeginNotEmissionOrder) {
  std::vector<TraceEvent> spans = query_->Spans(TraceSelector());
  ASSERT_EQ(spans.size(), 3u);
  // trainer/train was emitted last but begins first: a retroactively emitted
  // span is indistinguishable from a live one at query time.
  EXPECT_DOUBLE_EQ(spans[0].time, 2.0);
  EXPECT_DOUBLE_EQ(spans[1].time, 3.0);
  EXPECT_DOUBLE_EQ(spans[2].time, 6.0);
  EXPECT_TRUE(std::is_sorted(spans.begin(), spans.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.time < b.time;
                             }));
}

TEST_F(TraceQueryTest, CounterIntegralUsesStepSemantics) {
  TraceSelector depth = TraceSelector().Name("data/depth");
  // 0 before the first sample at t=2; 4 on [2,6); 10 from t=6.
  EXPECT_DOUBLE_EQ(query_->CounterIntegral(depth, 0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(query_->CounterIntegral(depth, 0.0, 10.0), 4.0 * 4 + 10.0 * 4);
  EXPECT_DOUBLE_EQ(query_->CounterIntegral(depth, 3.0, 7.0), 4.0 * 3 + 10.0 * 1);
  EXPECT_DOUBLE_EQ(query_->CounterMean(depth, 2.0, 6.0), 4.0);
  EXPECT_DOUBLE_EQ(query_->CounterMean(depth, 0.0, 10.0), (16.0 + 40.0) / 10.0);
}

TEST_F(TraceQueryTest, HappensBeforeFollowsEmissionOrder) {
  TraceSelector pub = TraceSelector().Name("trainer/publish");
  TraceSelector busy = TraceSelector().Name("replica/busy");
  TraceSelector train = TraceSelector().Name("trainer/train");
  TraceSelector missing = TraceSelector().Name("no/such/event");
  EXPECT_TRUE(query_->HappensBefore(pub, busy));
  EXPECT_FALSE(query_->HappensBefore(busy, pub));
  // trainer/train *begins* at t=2 but was emitted at t=9 — emission order,
  // not begin order, is what counts for causality.
  EXPECT_TRUE(query_->HappensBefore(busy, train));
  // An unmatched selector never satisfies happens-before in either role.
  EXPECT_FALSE(query_->HappensBefore(missing, pub));
  EXPECT_FALSE(query_->HappensBefore(pub, missing));
}

TEST_F(TraceQueryTest, EndTimeIsLargestEventEnd) {
  EXPECT_DOUBLE_EQ(query_->EndTime(), 9.0);
  TraceBuffer empty;
  EXPECT_DOUBLE_EQ(TraceQuery(empty).EndTime(), 0.0);
}

// --- Interval algebra --------------------------------------------------------

TEST(IntervalAlgebraTest, MergeUnionAndTotal) {
  std::vector<TraceEvent> spans = {MakeSpan(0.0, 2.0), MakeSpan(1.0, 2.0),
                                   MakeSpan(5.0, 1.0)};
  EXPECT_DOUBLE_EQ(TotalSeconds(spans), 5.0);  // double-counts the overlap
  std::vector<std::pair<double, double>> merged = MergeSpans(spans);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].first, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].second, 3.0);
  EXPECT_DOUBLE_EQ(merged[1].first, 5.0);
  EXPECT_DOUBLE_EQ(merged[1].second, 6.0);
  EXPECT_DOUBLE_EQ(UnionSeconds(spans), 4.0);
  EXPECT_DOUBLE_EQ(UnionSeconds({}), 0.0);
}

TEST(IntervalAlgebraTest, OverlapSeconds) {
  std::vector<TraceEvent> a = {MakeSpan(0.0, 4.0), MakeSpan(10.0, 2.0)};
  std::vector<TraceEvent> b = {MakeSpan(3.0, 8.0)};
  // intersection: [3,4) and [10,11) -> 2 seconds.
  EXPECT_DOUBLE_EQ(OverlapSeconds(a, b), 2.0);
  EXPECT_DOUBLE_EQ(OverlapSeconds(b, a), 2.0);
  EXPECT_DOUBLE_EQ(OverlapSeconds(a, {}), 0.0);
}

TEST(IntervalAlgebraTest, MaxUncoveredGap) {
  std::vector<TraceEvent> spans = {MakeSpan(2.0, 2.0), MakeSpan(7.0, 1.0)};
  // Over [0, 10]: gaps are [0,2] (2s), [4,7] (3s), [8,10] (2s).
  EXPECT_DOUBLE_EQ(MaxUncoveredGap(spans, 0.0, 10.0), 3.0);
  // Fully covered window has no gap.
  EXPECT_DOUBLE_EQ(MaxUncoveredGap(spans, 2.0, 4.0), 0.0);
  // No spans at all: the whole window is one gap.
  EXPECT_DOUBLE_EQ(MaxUncoveredGap({}, 0.0, 10.0), 10.0);
}

TEST(IntervalAlgebraTest, OverlapsAndContains) {
  TraceEvent outer = MakeSpan(0.0, 10.0);
  TraceEvent inner = MakeSpan(2.0, 3.0);
  TraceEvent disjoint = MakeSpan(11.0, 1.0);
  EXPECT_TRUE(Overlaps(outer, inner));
  EXPECT_TRUE(Overlaps(inner, outer));
  EXPECT_FALSE(Overlaps(outer, disjoint));
  EXPECT_TRUE(Contains(outer, inner));
  EXPECT_FALSE(Contains(inner, outer));
  EXPECT_FALSE(Contains(outer, disjoint));
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, CreateOnFirstUseReturnsStablePointers) {
  MetricsRegistry registry;
  MetricCounter* c = registry.Counter("manager/repack_events");
  EXPECT_EQ(registry.Counter("manager/repack_events"), c);
  c->Add();
  c->Add(3);
  EXPECT_EQ(registry.CounterValue("manager/repack_events"), 4);
  EXPECT_EQ(registry.CounterValue("missing"), 0);

  // Growth must not invalidate previously returned instruments.
  for (int i = 0; i < 200; ++i) {
    registry.Counter("filler/" + std::to_string(i))->Add(i);
  }
  c->Add();
  EXPECT_EQ(registry.CounterValue("manager/repack_events"), 5);

  registry.Gauge("g")->Set(2.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("g"), 2.5);
  registry.Samples("s")->Add(1.0);
  ASSERT_NE(registry.FindSamples("s"), nullptr);
  EXPECT_EQ(registry.FindSamples("s")->count(), 1u);
  EXPECT_EQ(registry.FindSamples("nope"), nullptr);
}

TEST(MetricsRegistryTest, EntriesKeepRegistrationOrder) {
  MetricsRegistry registry;
  registry.Counter("b");
  registry.Gauge("a");
  registry.Streaming("c");
  ASSERT_EQ(registry.entries().size(), 3u);
  EXPECT_EQ(registry.entries()[0].name, "b");
  EXPECT_EQ(registry.entries()[1].name, "a");
  EXPECT_EQ(registry.entries()[2].name, "c");
  std::string dump = registry.DumpText();
  EXPECT_LT(dump.find("b"), dump.find("a"));
}

TEST(MetricsRegistryTest, LabeledSpelling) {
  EXPECT_EQ(MetricsRegistry::Labeled("relay/pulls", "relay", "3"),
            "relay/pulls{relay=3}");
}

TEST(MetricsRegistryTest, StreamingStatMatchesClosedForm) {
  StreamingStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138089935299395, 1e-12);  // sample stddev, n-1
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

// --- End-to-end determinism --------------------------------------------------

RlSystemConfig TracedConfig(SystemKind system, uint64_t seed = 1234) {
  RlSystemConfig cfg;
  cfg.system = system;
  cfg.scale = ModelScale::k7B;
  cfg.total_gpus = 16;
  cfg.global_batch = 512;
  cfg.max_concurrency = 256;
  cfg.warmup_iterations = 1;
  cfg.measure_iterations = 2;
  cfg.seed = seed;
  cfg.trace.enabled = true;
  return cfg;
}

TEST(TraceDeterminismTest, ReportCarriesTraceOnlyWhenEnabled) {
  RlSystemConfig cfg = TracedConfig(SystemKind::kLaminar);
  SystemReport on = RunExperiment(cfg);
  ASSERT_NE(on.trace, nullptr);
  EXPECT_GT(on.trace->size(), 100u);
  cfg.trace.enabled = false;
  EXPECT_EQ(RunExperiment(cfg).trace, nullptr);
}

TEST(TraceDeterminismTest, SameSeedSameBytes) {
  RlSystemConfig cfg = TracedConfig(SystemKind::kLaminar);
  SystemReport a = RunExperiment(cfg);
  SystemReport b = RunExperiment(cfg);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  EXPECT_EQ(TraceToBinary(*a.trace), TraceToBinary(*b.trace));
  // A different seed must not produce the same trace (the check has teeth).
  cfg.seed = 99;
  EXPECT_NE(TraceToBinary(*RunExperiment(cfg).trace), TraceToBinary(*a.trace));
}

TEST(TraceDeterminismTest, IdenticalBytesAcrossSweepThreadCounts) {
  // The acceptance bar from DESIGN.md §9: for a fixed seed, trace files are
  // byte-identical no matter how the sweep fans experiments across threads.
  std::vector<RlSystemConfig> grid = {
      TracedConfig(SystemKind::kLaminar),
      TracedConfig(SystemKind::kVerlSync),
      TracedConfig(SystemKind::kOneStep, /*seed=*/77),
  };
  SweepOptions serial;
  serial.num_threads = 1;
  SweepOptions wide;
  wide.num_threads = 4;
  std::vector<SystemReport> a = RunExperiments(grid, serial);
  std::vector<SystemReport> b = RunExperiments(grid, wide);
  ASSERT_EQ(a.size(), grid.size());
  ASSERT_EQ(b.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    ASSERT_NE(a[i].trace, nullptr);
    ASSERT_NE(b[i].trace, nullptr);
    EXPECT_EQ(TraceToBinary(*a[i].trace), TraceToBinary(*b[i].trace)) << "config " << i;
    // And the sweep path matches the serial entry point exactly.
    SystemReport direct = RunExperiment(grid[i]);
    EXPECT_EQ(TraceToBinary(*direct.trace), TraceToBinary(*a[i].trace)) << "config " << i;
  }
}

TEST(TraceDeterminismTest, RingCaptureIsDeterministicToo) {
  RlSystemConfig cfg = TracedConfig(SystemKind::kLaminar);
  cfg.trace.ring_capacity = 512;
  SystemReport a = RunExperiment(cfg);
  SystemReport b = RunExperiment(cfg);
  ASSERT_NE(a.trace, nullptr);
  EXPECT_EQ(a.trace->ring_capacity(), 512u);
  EXPECT_GT(a.trace->dropped(), 0u);
  EXPECT_EQ(TraceToBinary(*a.trace), TraceToBinary(*b.trace));
}

}  // namespace
}  // namespace laminar
