#include <gtest/gtest.h>

#include "src/data/experience_buffer.h"
#include "src/llm/model_spec.h"
#include "src/policy/policy.h"
#include "src/trainer/trainer.h"

namespace laminar {
namespace {

TrajectoryRecord Rec(TrajId id, int version, int64_t prompt_id) {
  TrajectoryRecord r;
  r.id = id;
  r.prompt_id = prompt_id;
  r.difficulty = 0.4;
  r.weight_versions = {version};
  r.behavior_prob = 0.3;
  r.reward = id % 2 == 0 ? 1.0 : 0.0;
  r.success = r.reward > 0.5;
  r.spec.prompt_tokens = 100;
  r.spec.AppendSegment({900, 0.0, 0});
  return r;
}

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest() : buffer_(MakeFifoSampler()), policy_(PolicyConfig{}) {}

  Trainer MakeTrainer(TrainerMode mode, bool auto_continue, int global_batch = 64,
                      int minibatches = 4) {
    TrainerConfig tc;
    tc.global_batch = global_batch;
    tc.num_minibatches = minibatches;
    tc.mode = mode;
    tc.auto_continue = auto_continue;
    return Trainer(&sim_, tc, TrainCostModel(Qwen25_7B(), GpuSpec{}, 8), &buffer_, &policy_);
  }

  void Fill(int n, int version = 0) {
    for (int i = 0; i < n; ++i) {
      TrajId id = next_id_++;
      buffer_.Push(Rec(id, version, id / 16));
    }
  }

  Simulator sim_;
  ExperienceBuffer buffer_;
  Policy policy_;
  TrajId next_id_ = 0;
};

TEST_F(TrainerTest, WaitsForFullBatchThenPublishes) {
  Trainer trainer = MakeTrainer(TrainerMode::kFullBatch, false);
  double stall_reported = -1.0;
  trainer.set_publish_fn([&](int version) {
    stall_reported = 0.25;
    EXPECT_EQ(version, 1);
    return 0.25;
  });
  trainer.Start();
  Fill(32);
  trainer.NotifyData();
  sim_.RunUntilIdle();
  EXPECT_EQ(trainer.iterations().size(), 0u);  // not enough data
  Fill(32);
  trainer.NotifyData();
  sim_.RunUntilIdle();
  ASSERT_EQ(trainer.iterations().size(), 1u);
  const IterationStats& it = trainer.iterations()[0];
  EXPECT_EQ(it.version, 1);
  EXPECT_DOUBLE_EQ(it.publish_stall_seconds, 0.25);
  EXPECT_GT(it.train_seconds, 0.0);
  EXPECT_DOUBLE_EQ(it.tokens, 64.0 * 1000.0);
  EXPECT_EQ(trainer.version(), 1);
  EXPECT_EQ(policy_.latest_version(), 1);
  EXPECT_EQ(buffer_.size(), 0u);
}

TEST_F(TrainerTest, AutoContinueChainsIterations) {
  Trainer trainer = MakeTrainer(TrainerMode::kFullBatch, true);
  trainer.set_publish_fn([](int) { return 0.0; });
  trainer.Start();
  Fill(192);
  trainer.NotifyData();
  sim_.RunUntilIdle();
  EXPECT_EQ(trainer.iterations().size(), 3u);
  EXPECT_EQ(trainer.version(), 3);
  // Back-to-back iterations have no data wait.
  EXPECT_DOUBLE_EQ(trainer.iterations()[1].data_wait_seconds, 0.0);
}

TEST_F(TrainerTest, StreamingConsumesMinibatchByMinibatch) {
  Trainer trainer = MakeTrainer(TrainerMode::kStreaming, true, 64, 4);
  trainer.set_publish_fn([](int) { return 0.0; });
  trainer.Start();
  // Feed one mini-batch worth: trainer starts before the full batch exists.
  Fill(16);
  trainer.NotifyData();
  sim_.RunUntilIdle();
  EXPECT_TRUE(trainer.busy());
  EXPECT_EQ(trainer.iterations().size(), 0u);
  EXPECT_EQ(buffer_.size(), 0u);  // first mini-batch consumed already
  Fill(48);
  trainer.NotifyData();
  sim_.RunUntilIdle();
  ASSERT_EQ(trainer.iterations().size(), 1u);
  EXPECT_EQ(trainer.version(), 1);
}

TEST_F(TrainerTest, BeginGateBlocksStart) {
  Trainer trainer = MakeTrainer(TrainerMode::kFullBatch, true);
  bool allow = false;
  trainer.set_begin_gate([&] { return allow; });
  trainer.set_publish_fn([](int) { return 0.0; });
  trainer.Start();
  Fill(64);
  trainer.NotifyData();
  sim_.RunUntilIdle();
  EXPECT_EQ(trainer.iterations().size(), 0u);
  allow = true;
  trainer.NotifyData();
  sim_.RunUntilIdle();
  EXPECT_EQ(trainer.iterations().size(), 1u);
}

TEST_F(TrainerTest, StalenessStatsComputedAtConsumption) {
  Trainer trainer = MakeTrainer(TrainerMode::kFullBatch, false);
  trainer.set_publish_fn([](int) { return 0.0; });
  trainer.Start();
  Fill(64, /*version=*/0);
  trainer.NotifyData();
  sim_.RunUntilIdle();
  // Consumed at version 0: staleness 0.
  EXPECT_DOUBLE_EQ(trainer.iterations()[0].mean_consume_staleness, 0.0);
  Fill(64, /*version=*/0);  // still version-0 data, trainer now at version 1
  trainer.NotifyData();
  sim_.RunUntilIdle();
  EXPECT_DOUBLE_EQ(trainer.iterations()[1].mean_consume_staleness, 1.0);
  EXPECT_EQ(trainer.iterations()[1].max_consume_staleness, 1);
}

TEST_F(TrainerTest, KillMidIterationRecoversFromCheckpoint) {
  Trainer trainer = MakeTrainer(TrainerMode::kFullBatch, true);
  trainer.set_publish_fn([](int) { return 0.0; });
  trainer.Start();
  Fill(64);
  trainer.NotifyData();
  // Let the iteration start, then kill mid-way.
  EXPECT_TRUE(sim_.RunUntilTrue([&] { return trainer.busy(); }));
  trainer.Kill(/*recovery_seconds=*/30.0);
  EXPECT_TRUE(trainer.dead());
  // Unpublished mini-batch updates rolled back.
  EXPECT_EQ(policy_.parameters(), std::vector<double>(12, 0.0));
  Fill(64);
  sim_.RunUntilIdle();
  EXPECT_FALSE(trainer.dead());
  EXPECT_EQ(trainer.iterations().size(), 1u);
  EXPECT_EQ(trainer.version(), 1);
}

TEST_F(TrainerTest, IterationRecordsRewardAndMixedFraction) {
  Trainer trainer = MakeTrainer(TrainerMode::kFullBatch, false);
  trainer.set_publish_fn([](int) { return 0.0; });
  trainer.Start();
  for (int i = 0; i < 64; ++i) {
    TrajectoryRecord r = Rec(next_id_++, 0, i / 16);
    if (i < 16) {
      r.weight_versions = {0, 1};  // mixed
    }
    buffer_.Push(r);
  }
  trainer.NotifyData();
  sim_.RunUntilIdle();
  EXPECT_NEAR(trainer.iterations()[0].mean_reward, 0.5, 0.05);
  EXPECT_NEAR(trainer.iterations()[0].mixed_version_fraction, 0.25, 1e-9);
}

}  // namespace
}  // namespace laminar
