// Window-quality profiler (ShardWindowStats, DESIGN.md §12): the counters
// are a function of window-formation decisions alone, so they must be
// byte-identical across worker counts; an unsharded run must report a pure
// serial profile; topology-derived per-lane lookahead must open strictly
// wider windows than the legacy global bound on a multi-machine fleet; and
// the pinned repack corpus scenario must actually ride control traffic on
// replica lanes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "src/cluster/hardware.h"
#include "src/cluster/placement.h"
#include "src/core/driver_base.h"
#include "src/core/run.h"
#include "src/llm/decode_model.h"
#include "src/llm/model_spec.h"
#include "src/sim/simulator.h"
#include "src/verify/fuzzer.h"
#include "src/verify/scenario.h"

namespace laminar {
namespace {

// Same widening as shard_determinism_test: tp=1 on 8-GPU machines => 8
// replicas per machine, 4 machines => 4 populated lanes at shards=4.
RlSystemConfig WideFleetConfig() {
  Scenario sc = GenerateScenario(7);
  RlSystemConfig cfg = sc.config;
  cfg.ledger_enabled = true;
  cfg.trace.enabled = true;
  cfg.total_gpus = 40;
  cfg.train_gpus = 8;
  cfg.rollout_gpus = 32;
  return cfg;
}

ShardWindowStats RunForStats(RlSystemConfig cfg) {
  std::unique_ptr<DriverBase> driver = MakeDriver(cfg);
  driver->Run();
  return driver->sim().window_stats();
}

// The pre-topology bound: half the decode model's minimum step latency,
// applied globally to every lane (mirrors bench_full_system
// --global-lookahead).
double LegacyGlobalLookahead(const RlSystemConfig& cfg) {
  MachineSpec spec;
  return 0.5 * DecodeModel(ModelForScale(cfg.scale), spec,
                           RolloutTensorParallel(cfg.system, cfg.scale))
                   .StepLatency(1, 0.0);
}

TEST(WindowStatsTest, ByteIdenticalAcrossWorkerCounts) {
  RlSystemConfig cfg = WideFleetConfig();
  cfg.shards = 4;
  cfg.shard_workers = 0;  // inline coordinator
  ShardWindowStats inline_ws = RunForStats(cfg);
  cfg.shard_workers = 3;
  ShardWindowStats pooled_ws = RunForStats(cfg);

  EXPECT_GT(inline_ws.windows, 0u) << "fleet never opened a window";
  EXPECT_EQ(inline_ws.windows, pooled_ws.windows);
  EXPECT_EQ(inline_ws.window_events, pooled_ws.window_events);
  EXPECT_EQ(inline_ws.serial_steps, pooled_ws.serial_steps);
  EXPECT_EQ(inline_ws.actions_replayed, pooled_ws.actions_replayed);
  EXPECT_EQ(inline_ws.rejects_no_floor, pooled_ws.rejects_no_floor);
  EXPECT_EQ(inline_ws.rejects_narrow, pooled_ws.rejects_narrow);
  EXPECT_EQ(inline_ws.rejects_few_lanes, pooled_ws.rejects_few_lanes);
  EXPECT_EQ(inline_ws.bound_fence, pooled_ws.bound_fence);
  EXPECT_EQ(inline_ws.bound_queue, pooled_ws.bound_queue);
  EXPECT_EQ(inline_ws.bound_cap, pooled_ws.bound_cap);
  EXPECT_EQ(inline_ws.bound_lookahead, pooled_ws.bound_lookahead);
  EXPECT_EQ(inline_ws.bound_lane_control, pooled_ws.bound_lane_control);
  EXPECT_EQ(inline_ws.fence_stall_rejects, pooled_ws.fence_stall_rejects);
  EXPECT_EQ(inline_ws.eligible_lane_sum, pooled_ws.eligible_lane_sum);
  EXPECT_EQ(inline_ws.lane_control_events, pooled_ws.lane_control_events);
}

TEST(WindowStatsTest, UnshardedRunIsPureSerial) {
  RlSystemConfig cfg = WideFleetConfig();
  cfg.shards = 1;
  ShardWindowStats ws = RunForStats(cfg);
  EXPECT_EQ(ws.windows, 0u);
  EXPECT_EQ(ws.window_events, 0u);
  EXPECT_EQ(ws.lane_control_events, 0u);
  EXPECT_DOUBLE_EQ(ws.serial_fraction(), 1.0);
}

TEST(WindowStatsTest, TopologyLookaheadWidensWindowsOverGlobalBound) {
  RlSystemConfig cfg = WideFleetConfig();
  cfg.shards = 4;

  // Default: per-lane horizons derived from the lanes' own decode-step
  // floors and the alpha-beta control latency (driver_base.cc Run()).
  ShardWindowStats topo = RunForStats(cfg);

  // A/B lever: an explicit shard_lookahead_seconds pins every lane to one
  // global scalar, reinstating the pre-topology bound.
  cfg.shard_lookahead_seconds = LegacyGlobalLookahead(cfg);
  ShardWindowStats global = RunForStats(cfg);

  ASSERT_GT(topo.windows, 0u);
  ASSERT_GT(global.windows, 0u);
  // Same workload, same events — wider horizons mean the same window-regime
  // work packs into fewer, larger windows.
  EXPECT_GT(topo.mean_events_per_window(), global.mean_events_per_window());
}

TEST(WindowStatsTest, PinnedRepackScenarioRidesControlTrafficOnLanes) {
  // The committed corpus scenario that exists to exercise lane-riding
  // control: stall chaos drains machines, repack issues
  // StartWeightUpdate(src), and the async pull completions (plus thaw and
  // relay-arrival traffic) ride the affine replica lanes. If classification
  // regressed to fencing everything on lane 0, this count drops to zero.
  Scenario scn;
  std::string error;
  ASSERT_TRUE(LoadScenarioFile(
      std::string(LAMINAR_FUZZ_CORPUS_DIR) + "/repack_lane_pull.scenario",
      &scn, &error))
      << error;
  ASSERT_EQ(scn.config.shards, 4) << "scenario must arm sharded execution";
  ShardWindowStats ws = RunForStats(scn.config);
  EXPECT_GT(ws.windows, 0u);
  EXPECT_GT(ws.lane_control_events, 0u);
}

}  // namespace
}  // namespace laminar
