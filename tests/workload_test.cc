#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/workload/generator.h"
#include "src/workload/length_model.h"

namespace laminar {
namespace {

TEST(LengthModelTest, P99ToMedianRatioIsOrderOfMagnitude) {
  // Figure 2: p99 response length can exceed the median by ~10x (before the
  // generation-limit clamp truncates the tail; lift the cap to see the raw
  // distribution shape).
  LengthDistribution d = MathLengthDistribution(ModelScale::k7B);
  d.max_tokens = 1 << 20;
  EXPECT_GT(d.Quantile(0.99) / d.Quantile(0.5), 8.0);
}

TEST(LengthModelTest, QuantileIsClampedLikeSample) {
  // Regression: Quantile() used to return the unclamped log-normal inverse
  // CDF, so Quantile(0.99) of the tool-turn distribution exceeded its own
  // max_tokens and quantile-based sizing disagreed with what Sample() can
  // actually produce.
  LengthDistribution d = ToolTurnLengthDistribution();
  EXPECT_LE(d.Quantile(0.99), static_cast<double>(d.max_tokens));
  EXPECT_DOUBLE_EQ(d.Quantile(0.99), static_cast<double>(d.max_tokens));
  EXPECT_GE(d.Quantile(0.001), static_cast<double>(d.min_tokens));
  // Quantiles the clamp does not bite are untouched.
  EXPECT_NEAR(d.Quantile(0.5), d.median_tokens, 1e-6);
}

TEST(LengthModelTest, QuantileMatchesEmpiricalSampleQuantiles) {
  // Property: the analytic quantile must agree with the empirical quantiles
  // of Sample() — including where the clamp binds (q=0.99 caps exactly at
  // max_tokens for every distribution below).
  const LengthDistribution dists[] = {MathLengthDistribution(ModelScale::k7B),
                                      MathLengthDistribution(ModelScale::k32B),
                                      ToolTurnLengthDistribution()};
  const double qs[] = {0.1, 0.5, 0.9, 0.99};
  Rng rng(77);
  for (const LengthDistribution& d : dists) {
    SampleSet s;
    for (int i = 0; i < 40000; ++i) {
      s.Add(static_cast<double>(d.Sample(rng)));
    }
    for (double q : qs) {
      double analytic = d.Quantile(q);
      double empirical = s.Quantile(q);
      EXPECT_NEAR(analytic, empirical, 0.08 * empirical)
          << "median=" << d.median_tokens << " q=" << q;
    }
  }
}

TEST(LengthModelTest, SamplesRespectClamp) {
  LengthDistribution d = MathLengthDistribution(ModelScale::k7B);
  Rng rng(21);
  for (int i = 0; i < 20000; ++i) {
    int64_t x = d.Sample(rng);
    ASSERT_GE(x, d.min_tokens);
    ASSERT_LE(x, d.max_tokens);
  }
}

TEST(LengthModelTest, EmpiricalMedianMatchesParameter) {
  LengthDistribution d = MathLengthDistribution(ModelScale::k32B);
  Rng rng(22);
  SampleSet s;
  for (int i = 0; i < 30000; ++i) {
    s.Add(static_cast<double>(d.Sample(rng)));
  }
  EXPECT_NEAR(s.Median(), d.median_tokens, d.median_tokens * 0.05);
}

TEST(LengthModelTest, TruncationSpikeAtMaxTokens) {
  // The paper's Figure 17 distributions show mass at the 16K cap.
  LengthDistribution d = MathLengthDistribution(ModelScale::k72B);
  Rng rng(23);
  int capped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (d.Sample(rng) == d.max_tokens) {
      ++capped;
    }
  }
  EXPECT_GT(capped, n / 200);  // >0.5% truncated
  EXPECT_LT(capped, n / 5);
}

TEST(LengthModelTest, LargerCheckpointsEmitLongerResponses) {
  EXPECT_LT(MathLengthDistribution(ModelScale::k7B).median_tokens,
            MathLengthDistribution(ModelScale::k32B).median_tokens);
  EXPECT_LT(MathLengthDistribution(ModelScale::k32B).median_tokens,
            MathLengthDistribution(ModelScale::k72B).median_tokens);
}

TEST(EnvLatencyTest, HeavyTailWithinBounds) {
  EnvLatencyDistribution d = SandboxLatencyDistribution();
  Rng rng(31);
  SampleSet s;
  for (int i = 0; i < 20000; ++i) {
    double x = d.Sample(rng);
    ASSERT_GE(x, d.min_seconds);
    ASSERT_LE(x, d.max_seconds);
    s.Add(x);
  }
  EXPECT_GT(s.Quantile(0.99) / s.Median(), 5.0);
}

TEST(LengthDriftTest, MonotoneAndSaturating) {
  EXPECT_DOUBLE_EQ(LengthDriftFactor(0), 1.0);
  EXPECT_GT(LengthDriftFactor(50), LengthDriftFactor(10));
  EXPECT_LT(LengthDriftFactor(1000), 1.36);
}

TEST(GeneratorTest, MathTaskIsSingleSegmentNoEnv) {
  WorkloadConfig cfg;
  cfg.task = TaskKind::kMathReasoning;
  WorkloadGenerator gen(cfg, Rng(1));
  for (int i = 0; i < 200; ++i) {
    TrajectorySpec spec = gen.Sample(0);
    ASSERT_EQ(spec.num_turns(), 1);
    EXPECT_DOUBLE_EQ(spec.total_env_latency(), 0.0);
    EXPECT_EQ(spec.total_feedback_tokens(), 0);
    EXPECT_GE(spec.prompt_tokens, cfg.prompt_tokens_min);
    EXPECT_LE(spec.prompt_tokens, cfg.prompt_tokens_max);
  }
}

TEST(GeneratorTest, ToolTaskRespectsMaxCalls) {
  WorkloadConfig cfg;
  cfg.task = TaskKind::kToolCalling;
  cfg.max_tool_calls = 8;
  WorkloadGenerator gen(cfg, Rng(2));
  bool saw_multi = false;
  for (int i = 0; i < 500; ++i) {
    TrajectorySpec spec = gen.Sample(0);
    ASSERT_GE(spec.num_turns(), 1);
    ASSERT_LE(spec.num_turns(), cfg.max_tool_calls);
    // Env latency attaches to every turn except the final answer.
    int env_turns = 0;
    for (const auto& seg : spec.segments()) {
      if (seg.env_latency > 0.0) {
        ++env_turns;
        EXPECT_GT(seg.feedback_tokens, 0);
      }
    }
    EXPECT_EQ(env_turns, spec.num_turns() - 1);
    saw_multi |= spec.num_turns() > 1;
  }
  EXPECT_TRUE(saw_multi);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  WorkloadConfig cfg;
  WorkloadGenerator a(cfg, Rng(99));
  WorkloadGenerator b(cfg, Rng(99));
  for (int i = 0; i < 100; ++i) {
    TrajectorySpec sa = a.Sample(0);
    TrajectorySpec sb = b.Sample(0);
    EXPECT_EQ(sa.prompt_tokens, sb.prompt_tokens);
    EXPECT_EQ(sa.total_decode_tokens(), sb.total_decode_tokens());
  }
}

TEST(GeneratorTest, DriftLengthensTrajectoriesWithVersion) {
  WorkloadConfig cfg;
  cfg.length_drift = true;
  WorkloadGenerator gen(cfg, Rng(4));
  double early = 0.0;
  double late = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    early += static_cast<double>(gen.Sample(0).total_decode_tokens());
    late += static_cast<double>(gen.Sample(200).total_decode_tokens());
  }
  EXPECT_GT(late / early, 1.1);
}

TEST(GeneratorTest, ExpectedTokensRoughlyMatchEmpirical) {
  WorkloadConfig cfg;
  WorkloadGenerator gen(cfg, Rng(5));
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(gen.Sample(0).total_context_tokens());
  }
  double empirical = total / n;
  EXPECT_NEAR(gen.ExpectedTotalTokens(), empirical, empirical * 0.25);
}

TEST(TrajectorySpecTest, TokenAccounting) {
  TrajectorySpec spec;
  spec.prompt_tokens = 100;
  spec.AppendSegment({50, 1.0, 20});
  spec.AppendSegment({30, 0.0, 0});
  EXPECT_EQ(spec.total_decode_tokens(), 80);
  EXPECT_EQ(spec.total_feedback_tokens(), 20);
  EXPECT_EQ(spec.total_context_tokens(), 200);
  EXPECT_DOUBLE_EQ(spec.total_env_latency(), 1.0);
}

}  // namespace
}  // namespace laminar
